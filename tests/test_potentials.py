"""Tests for the classical potentials and the SNAP adapter."""

import numpy as np
import pytest

from repro.core import SNAPParams
from repro.md import Box, build_pairs
from repro.potentials import (FinnisSinclair, LennardJones, SNAPPotential,
                              StillingerWeber)
from repro.potentials.sw import triplet_indices
from repro.structures import lattice_system


def _fd_check(pot, system, atol, h=1e-6, natoms_checked=4):
    nbr = build_pairs(system.positions, system.box, pot.cutoff)
    res = pot.compute(system.natoms, nbr)

    def energy(p):
        return pot.compute(system.natoms, build_pairs(p, system.box, pot.cutoff)).energy

    # finite-difference forces on the first rows, computed directly
    f = np.zeros((natoms_checked, 3))
    for i in range(natoms_checked):
        for c in range(3):
            p = system.positions.copy()
            p[i, c] += h
            ep = energy(p)
            p[i, c] -= 2 * h
            em = energy(p)
            f[i, c] = -(ep - em) / (2 * h)
    assert np.allclose(res.forces[:natoms_checked], f, atol=atol)
    return res


@pytest.fixture
def perturbed_fcc(rng):
    s = lattice_system("fcc", a=1.6, reps=(3, 3, 3))
    s.positions = s.positions + rng.normal(scale=0.04, size=s.positions.shape)
    return s


@pytest.fixture
def perturbed_diamond(rng):
    s = lattice_system("diamond", a=3.57, reps=(2, 2, 2))
    s.positions = s.positions + rng.normal(scale=0.04, size=s.positions.shape)
    return s


class TestLennardJones:
    def test_dimer_minimum(self):
        pot = LennardJones(epsilon=1.0, sigma=1.0, cutoff=5.0, shift=False)
        box = Box.cubic(50.0)

        def e(d):
            pos = np.array([[0.0, 0.0, 0.0], [d, 0.0, 0.0]])
            return pot.compute(2, build_pairs(pos, box, pot.cutoff)).energy

        dmin = 2.0 ** (1.0 / 6.0)
        assert e(dmin) == pytest.approx(-1.0, rel=1e-6)
        assert e(dmin) < e(dmin * 0.95) and e(dmin) < e(dmin * 1.05)

    def test_forces_fd(self, perturbed_fcc):
        _fd_check(LennardJones(epsilon=1.0, sigma=1.0, cutoff=2.5), perturbed_fcc, 1e-5)

    def test_shift_removes_cutoff_jump(self):
        box = Box.cubic(50.0)
        pot = LennardJones(epsilon=1.0, sigma=1.0, cutoff=2.5, shift=True)
        pos = np.array([[0.0, 0.0, 0.0], [2.499999, 0.0, 0.0]])
        e = pot.compute(2, build_pairs(pos, box, pot.cutoff)).energy
        assert abs(e) < 1e-4

    def test_newton(self, perturbed_fcc):
        pot = LennardJones(cutoff=2.5)
        nbr = build_pairs(perturbed_fcc.positions, perturbed_fcc.box, pot.cutoff)
        res = pot.compute(perturbed_fcc.natoms, nbr)
        assert np.allclose(res.forces.sum(axis=0), 0.0, atol=1e-10)

    def test_peratom_sums_to_total(self, perturbed_fcc):
        pot = LennardJones(cutoff=2.5)
        nbr = build_pairs(perturbed_fcc.positions, perturbed_fcc.box, pot.cutoff)
        res = pot.compute(perturbed_fcc.natoms, nbr)
        assert res.peratom.sum() == pytest.approx(res.energy)

    def test_virial_matches_volume_derivative(self):
        # tr(W)/3V = -dE/dV at zero temperature
        pot = LennardJones(epsilon=1.0, sigma=1.0, cutoff=2.5)
        s = lattice_system("fcc", a=1.55, reps=(3, 3, 3))
        nbr = build_pairs(s.positions, s.box, pot.cutoff)
        res = pot.compute(s.natoms, nbr)
        p_virial = np.trace(res.virial) / 3.0 / s.box.volume

        eps = 1e-5
        es = []
        for f in (1 + eps, 1 - eps):
            pos = s.positions * f
            box = s.box.scaled(f)
            es.append(pot.compute(s.natoms, build_pairs(pos, box, pot.cutoff)).energy)
        dv = s.box.volume * ((1 + eps) ** 3 - (1 - eps) ** 3)
        p_fd = -(es[0] - es[1]) / dv
        assert p_virial == pytest.approx(p_fd, rel=1e-4, abs=1e-8)

    def test_validation(self):
        with pytest.raises(ValueError):
            LennardJones(epsilon=-1.0)


class TestFinnisSinclair:
    def test_forces_fd(self, rng):
        s = lattice_system("bcc", a=3.2, reps=(3, 3, 3))
        s.positions = s.positions + rng.normal(scale=0.05, size=s.positions.shape)
        _fd_check(FinnisSinclair(), s, 1e-5)

    def test_embedding_lowers_energy(self):
        s = lattice_system("bcc", a=3.2, reps=(3, 3, 3))
        nbr = build_pairs(s.positions, s.box, FinnisSinclair().cutoff)
        with_emb = FinnisSinclair(a=1.9).compute(s.natoms, nbr).energy
        without = FinnisSinclair(a=0.0).compute(s.natoms, nbr).energy
        assert with_emb < without

    def test_isolated_atom(self):
        pot = FinnisSinclair()
        box = Box.cubic(50.0)
        pos = np.array([[25.0, 25.0, 25.0]])
        res = pot.compute(1, build_pairs(pos, box, pot.cutoff))
        assert res.energy == pytest.approx(0.0)
        assert np.allclose(res.forces, 0.0)


class TestStillingerWeber:
    def test_forces_fd(self, perturbed_diamond):
        _fd_check(StillingerWeber(), perturbed_diamond, 5e-5)

    def test_diamond_prefered_over_fcc(self):
        # the three-body term must stabilize fourfold coordination
        pot = StillingerWeber()
        e = {}
        for kind, a in [("diamond", 3.57), ("fcc", 2.70)]:
            best = np.inf
            for scale in np.linspace(0.85, 1.2, 15):
                s = lattice_system(kind, a=a * scale, reps=(2, 2, 2))
                nbr = build_pairs(s.positions, s.box, pot.cutoff)
                best = min(best, pot.compute(s.natoms, nbr).energy / s.natoms)
            e[kind] = best
        assert e["diamond"] < e["fcc"]

    def test_cohesive_energy_negative(self):
        pot = StillingerWeber()
        s = lattice_system("diamond", a=3.57, reps=(2, 2, 2))
        nbr = build_pairs(s.positions, s.box, pot.cutoff)
        assert pot.compute(s.natoms, nbr).energy < 0

    def test_triplet_indices(self):
        i_idx = np.array([0, 0, 0, 1, 1, 2])
        p, q = triplet_indices(i_idx, 3)
        trips = sorted(zip(p.tolist(), q.tolist()))
        assert trips == [(0, 1), (0, 2), (1, 2), (3, 4)]

    def test_triplet_indices_empty(self):
        p, q = triplet_indices(np.array([0, 1, 2]), 3)
        assert p.size == 0

    def test_angular_term_zero_for_ideal_angle(self):
        # three atoms at the tetrahedral angle: v3 contribution vanishes
        pot = StillingerWeber()
        d = 1.55
        cos_t = -1.0 / 3.0
        pos = np.array([
            [0.0, 0.0, 0.0],
            [d, 0.0, 0.0],
            [d * cos_t, d * np.sqrt(1 - cos_t ** 2), 0.0],
        ])
        box = Box(lengths=[50.0] * 3, periodic=(False,) * 3)
        nbr = build_pairs(pos, box, pot.cutoff)
        res = pot.compute(3, nbr)
        # compare against pure two-body: zero three-body energy
        e2 = StillingerWeber(lam=0.0).compute(3, nbr)
        assert res.energy == pytest.approx(e2.energy, abs=1e-10)

    def test_validation(self):
        with pytest.raises(ValueError):
            StillingerWeber(a=0.9)


class TestSNAPPotential:
    def test_adapter(self, rng):
        params = SNAPParams(twojmax=2, rcut=2.2)
        pot = SNAPPotential(params, beta=rng.normal(size=6))
        s = lattice_system("fcc", a=2.0, reps=(2, 2, 2))
        nbr = build_pairs(s.positions, s.box, pot.cutoff)
        res = pot.compute(s.natoms, nbr)
        assert res.forces.shape == (s.natoms, 3)
        assert pot.params.twojmax == 2
        assert set(pot.last_timings)

    def test_forces_fd(self, rng):
        params = SNAPParams(twojmax=2, rcut=2.2)
        pot = SNAPPotential(params, beta=rng.normal(size=6))
        s = lattice_system("fcc", a=2.0, reps=(2, 2, 2))
        s.positions = s.positions + rng.normal(scale=0.03, size=s.positions.shape)
        _fd_check(pot, s, 1e-4, natoms_checked=2)


class TestTablePotential:
    def test_reproduces_lj(self, perturbed_fcc):
        lj = LennardJones(epsilon=1.0, sigma=1.0, cutoff=2.5, shift=True)
        from repro.potentials import TablePotential

        def phi(r):
            sr6 = (1.0 / r) ** 6
            return 4.0 * (sr6 * sr6 - sr6)

        tab = TablePotential.from_potential(phi, rmin=0.75, cutoff=2.5,
                                            npoints=2000)
        nbr = build_pairs(perturbed_fcc.positions, perturbed_fcc.box, 2.5)
        a = lj.compute(perturbed_fcc.natoms, nbr)
        b = tab.compute(perturbed_fcc.natoms, nbr)
        assert abs(a.energy - b.energy) / abs(a.energy) < 1e-5
        assert np.allclose(a.forces, b.forces, atol=2e-3)

    def test_forces_fd(self, perturbed_fcc):
        from repro.potentials import TablePotential

        tab = TablePotential.from_potential(
            lambda r: np.exp(-r) * np.cos(2 * r), rmin=0.5, cutoff=2.5)
        _fd_check(tab, perturbed_fcc, 1e-4)

    def test_energy_zero_at_cutoff(self):
        from repro.potentials import TablePotential
        from repro.md import Box

        tab = TablePotential.from_potential(lambda r: 1.0 / r, rmin=0.5,
                                            cutoff=3.0)
        pos = np.array([[0.0, 0.0, 0.0], [2.999999, 0.0, 0.0]])
        box = Box(lengths=[50.0] * 3, periodic=(False,) * 3)
        res = tab.compute(2, build_pairs(pos, box, 3.0))
        assert abs(res.energy) < 1e-5

    def test_validation(self):
        from repro.potentials import TablePotential

        with pytest.raises(ValueError):
            TablePotential(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            TablePotential(np.array([1.0, 0.9, 1.1, 1.2]), np.zeros(4))
        with pytest.raises(ValueError):
            TablePotential(np.linspace(1, 2, 10), np.zeros(10), cutoff=5.0)
