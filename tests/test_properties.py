"""Cross-module property-based tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import free_cluster_pairs
from repro.core import SNAP, SNAPParams
from repro.md import Box, build_pairs
from repro.perfmodel import md_performance, step_time
from repro.potentials import LennardJones
from repro.structures import lattice_system


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 10_000), nn=st.integers(1, 10))
def test_snap_descriptor_rotation_invariance_property(seed, nn):
    """B is rotation invariant for arbitrary environments."""
    from scipy.spatial.transform import Rotation

    rng = np.random.default_rng(seed)
    params = SNAPParams(twojmax=2, rcut=3.0)
    snap = SNAP(params)
    rij = rng.normal(size=(nn, 3))
    norms = np.linalg.norm(rij, axis=1)
    rij = rij / norms[:, None] * rng.uniform(0.5, 2.7, size=nn)[:, None]
    from repro.core import NeighborBatch

    nbr1 = NeighborBatch(i_idx=np.zeros(nn, dtype=np.intp), rij=rij,
                         r=np.linalg.norm(rij, axis=1))
    rot = Rotation.random(random_state=seed % 100).as_matrix()
    rij2 = rij @ rot.T
    nbr2 = NeighborBatch(i_idx=np.zeros(nn, dtype=np.intp), rij=rij2,
                         r=np.linalg.norm(rij2, axis=1))
    b1 = snap.compute_descriptors(1, nbr1)
    b2 = snap.compute_descriptors(1, nbr2)
    assert np.allclose(b1, b2, rtol=1e-9, atol=1e-9)


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 1000), natoms=st.integers(3, 8))
def test_snap_newton_third_law_property(seed, natoms):
    rng = np.random.default_rng(seed)
    params = SNAPParams(twojmax=2, rcut=3.0)
    snap = SNAP(params, beta=rng.normal(size=6))
    pos = rng.uniform(0, 4.0, size=(natoms, 3))
    # avoid overlapping atoms
    for i in range(natoms):
        for j in range(i):
            if np.linalg.norm(pos[i] - pos[j]) < 0.5:
                pos[i] += 0.7
    res = snap.compute(natoms, free_cluster_pairs(pos, 3.0))
    assert np.allclose(res.forces.sum(axis=0), 0.0, atol=1e-8)


@settings(deadline=None, max_examples=20)
@given(natoms=st.floats(1e6, 2e10), nodes=st.integers(1, 4650))
def test_perfmodel_rate_bounded_by_compute(natoms, nodes):
    """Per-node rate never exceeds the compute-only plateau."""
    perf = md_performance("summit", natoms, nodes)
    assert 0 < perf < 6.55e6 + 1.0


@settings(deadline=None, max_examples=20)
@given(natoms=st.floats(1e7, 2e10), nodes=st.integers(2, 4000))
def test_perfmodel_fractions_are_probabilities(natoms, nodes):
    frac = step_time("summit", natoms, nodes).fractions()
    assert all(0 <= v <= 1 for v in frac.values())
    assert sum(frac.values()) == pytest.approx(1.0)


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 500), cutoff=st.floats(1.5, 3.5))
def test_pair_potential_energy_translation_invariant(seed, cutoff):
    rng = np.random.default_rng(seed)
    box = Box.cubic(12.0)
    pos = rng.uniform(0, 12, size=(40, 3))
    pot = LennardJones(epsilon=0.3, sigma=1.1, cutoff=cutoff)
    e1 = pot.compute(40, build_pairs(pos, box, cutoff)).energy
    shift = rng.uniform(-20, 20, size=3)
    e2 = pot.compute(40, build_pairs(box.wrap(pos + shift), box, cutoff)).energy
    assert e1 == pytest.approx(e2, rel=1e-9, abs=1e-9)


@settings(deadline=None, max_examples=10)
@given(reps=st.integers(1, 3), kind=st.sampled_from(["sc", "bcc", "fcc",
                                                     "diamond", "bc8"]))
def test_lattice_energy_extensive(reps, kind):
    """Energy per atom is replication invariant for crystals."""
    pot = LennardJones(epsilon=0.1, sigma=1.4, cutoff=2.8)
    a = 3.2
    s1 = lattice_system(kind, a=a, reps=(1, 1, 1))
    # guard: box must admit the cutoff through the image sweep
    if s1.box.lengths[0] < 2.8 / 1.4:
        return
    sr = lattice_system(kind, a=a, reps=(reps, reps, reps))
    e1 = pot.compute(s1.natoms, build_pairs(s1.positions, s1.box, 2.8)).energy
    er = pot.compute(sr.natoms, build_pairs(sr.positions, sr.box, 2.8)).energy
    assert er / sr.natoms == pytest.approx(e1 / s1.natoms, rel=1e-9)


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 300), t_seg=st.floats(0.1, 3.0))
def test_parsplice_time_conservation(seed, t_seg):
    """Spliced + stored segment time always equals generated time."""
    from repro.parsplice import (SegmentGenerator, SpliceEngine, arrhenius_msm,
                                 nanoparticle_landscape)

    e, b = nanoparticle_landscape(seed=seed % 5)
    msm = arrhenius_msm(e, b, temperature=800.0)
    gen = SegmentGenerator(msm, t_segment=t_seg, seed=seed)
    sp = SpliceEngine(initial_state=0)
    rng = np.random.default_rng(seed)
    for _ in range(50):
        sp.deposit(gen.generate(int(rng.integers(0, 5))))
    stored_time = sp.stored_segments * t_seg
    assert sp.trajectory_time + stored_time == pytest.approx(gen.generated_time)
