"""Tests for the quasi-stationary-distribution theory demonstrator.

These check the lecture's three QSD claims on real Langevin dynamics:
uniqueness/convergence of the survivor distribution, exponential first
escapes from the QSD, and loss of entry-point memory after the
decorrelation time.
"""

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro.parsplice.qsd import (DoubleWell, evolve, exponentiality,
                                 first_escape_times, qsd_sample)

KT = 0.25
DT = 2e-3


@pytest.fixture(scope="module")
def well():
    return DoubleWell(height=1.0)


class TestDoubleWell:
    def test_force_is_minus_gradient(self, well):
        x = np.linspace(-1.8, -0.1, 30)
        h = 1e-6
        fd = -(well.energy(x + h) - well.energy(x - h)) / (2 * h)
        assert np.allclose(well.force(x), fd, atol=1e-6)

    def test_minima(self, well):
        assert well.force(np.array([-1.0]))[0] == pytest.approx(0.0)
        assert well.energy(np.array([-1.0]))[0] == pytest.approx(0.0)
        assert well.energy(np.array([0.0]))[0] == pytest.approx(well.height)


class TestEvolve:
    def test_absorbing_boundary_kills_escapees(self, well):
        rng = np.random.default_rng(0)
        x = np.full(500, -0.05)  # starts a breath away from the saddle
        _, alive = evolve(well, x, kt=KT, duration=1.0, dt=DT, rng=rng)
        assert alive.sum() < 500

    def test_non_absorbing_keeps_all(self, well):
        rng = np.random.default_rng(0)
        x = np.full(200, -0.05)
        _, alive = evolve(well, x, kt=KT, duration=0.5, dt=DT, rng=rng,
                          absorbing=False)
        assert alive.all()

    def test_validation(self, well):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            evolve(well, np.zeros(3), kt=-1.0, duration=1.0, dt=DT, rng=rng)


class TestQSD:
    def test_survivors_concentrate_near_minimum(self, well):
        x = qsd_sample(well, 2000, KT, t_corr=2.0, dt=DT, seed=1)
        assert -1.3 < np.mean(x) < -0.7
        assert np.all(x < 0)

    def test_qsd_independent_of_start(self, well):
        """Uniqueness: the QSD does not remember the initial condition."""
        xa = qsd_sample(well, 2500, KT, t_corr=2.5, dt=DT, x0=-0.3, seed=2)
        xb = qsd_sample(well, 2500, KT, t_corr=2.5, dt=DT, x0=-1.6, seed=3)
        assert ks_2samp(xa, xb).pvalue > 0.01

    def test_no_survivors_raises(self, well):
        with pytest.raises(RuntimeError):
            qsd_sample(well, 5, kt=3.0, t_corr=50.0, dt=DT, x0=-0.01, seed=4)


class TestExponentialEscape:
    def test_qsd_escapes_are_exponential(self, well):
        """The central claim: CV of first-escape times from the QSD is 1."""
        x = qsd_sample(well, 2500, KT, t_corr=2.0, dt=DT, seed=5)
        t = first_escape_times(well, x[:800], KT, dt=DT, t_max=400.0, seed=6)
        assert (t >= 400.0).sum() == 0  # all escaped
        assert exponentiality(t) == pytest.approx(1.0, abs=0.15)

    def test_boundary_start_is_not_exponential(self, well):
        t = first_escape_times(well, np.full(800, -0.15), KT, dt=DT,
                               t_max=400.0, seed=7)
        assert exponentiality(t) > 1.3

    def test_memory_loss_after_decorrelation(self, well):
        """Escape-time law is entry-point independent after t_corr..."""
        xa = qsd_sample(well, 2000, KT, t_corr=2.0, dt=DT, x0=-0.3, seed=8)
        xb = qsd_sample(well, 2000, KT, t_corr=2.0, dt=DT, x0=-1.6, seed=9)
        ta = first_escape_times(well, xa[:600], KT, dt=DT, t_max=400.0, seed=10)
        tb = first_escape_times(well, xb[:600], KT, dt=DT, t_max=400.0, seed=11)
        assert ks_2samp(ta, tb).pvalue > 0.01

    def test_memory_without_decorrelation(self, well):
        """... and strongly entry-point dependent without it."""
        ta = first_escape_times(well, np.full(600, -0.3), KT, dt=DT,
                                t_max=400.0, seed=12)
        tb = first_escape_times(well, np.full(600, -1.6), KT, dt=DT,
                                t_max=400.0, seed=13)
        assert ks_2samp(ta, tb).pvalue < 1e-6

    def test_exponentiality_validation(self):
        with pytest.raises(ValueError):
            exponentiality(np.array([1.0]))
        with pytest.raises(ValueError):
            exponentiality(np.array([0.0, 0.0]))
