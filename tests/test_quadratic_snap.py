"""Tests for quadratic SNAP (per-atom effective coefficients)."""

import numpy as np
import pytest

from conftest import fd_forces, free_cluster_pairs, random_cluster
from repro.core import SNAP, SNAPParams

PARAMS = SNAPParams(twojmax=2, rcut=3.0)
NB = SNAP(PARAMS).index.nb


@pytest.fixture
def quad_snap(rng):
    beta = rng.normal(size=NB + 1)
    q = 0.1 * rng.normal(size=(NB, NB))
    return SNAP(PARAMS, beta=beta, quadratic=q)


class TestQuadraticSNAP:
    def test_zero_matrix_equals_linear(self, rng):
        beta = rng.normal(size=NB + 1)
        lin = SNAP(PARAMS, beta=beta)
        quad = SNAP(PARAMS, beta=beta, quadratic=np.zeros((NB, NB)))
        pos = random_cluster(rng, natoms=5)
        nbr = free_cluster_pairs(pos, 3.0)
        r1, r2 = lin.compute(5, nbr), quad.compute(5, nbr)
        assert r1.energy == pytest.approx(r2.energy)
        assert np.allclose(r1.forces, r2.forces, atol=1e-12)

    def test_energy_formula(self, rng, quad_snap):
        pos = random_cluster(rng, natoms=4)
        nbr = free_cluster_pairs(pos, 3.0)
        res = quad_snap.compute(4, nbr)
        b = quad_snap.compute_descriptors(4, nbr)
        expect = (quad_snap.beta[0] + b @ quad_snap.beta[1:]
                  + 0.5 * np.einsum("al,lm,am->a", b, quad_snap.quadratic, b))
        assert np.allclose(res.peratom, expect, atol=1e-10)

    def test_forces_fd(self, rng, quad_snap):
        pos = random_cluster(rng, natoms=5)

        def energy(p):
            return quad_snap.compute(p.shape[0], free_cluster_pairs(p, 3.0)).energy

        res = quad_snap.compute(pos.shape[0], free_cluster_pairs(pos, 3.0))
        fd = fd_forces(energy, pos)
        assert np.allclose(res.forces, fd, atol=1e-5)

    def test_newton(self, rng, quad_snap):
        pos = random_cluster(rng, natoms=6)
        res = quad_snap.compute(6, free_cluster_pairs(pos, 3.0))
        assert np.allclose(res.forces.sum(axis=0), 0.0, atol=1e-9)

    def test_asymmetric_input_symmetrized(self, rng):
        q = rng.normal(size=(NB, NB))
        snap = SNAP(PARAMS, quadratic=q)
        assert np.allclose(snap.quadratic, snap.quadratic.T)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="quadratic"):
            SNAP(PARAMS, quadratic=np.zeros((2, 2)))

    def test_quadratic_changes_energy(self, rng, quad_snap):
        pos = random_cluster(rng, natoms=4)
        nbr = free_cluster_pairs(pos, 3.0)
        lin = SNAP(PARAMS, beta=quad_snap.beta)
        assert quad_snap.compute(4, nbr).energy != pytest.approx(
            lin.compute(4, nbr).energy)
