"""Checkpoint/restart correctness: atomic writes and bitwise resume.

The central contract: interrupting a run at a checkpoint and resuming
from it yields *bitwise* the same positions, velocities, thermo log and
trajectory bytes as the run that never stopped - on every execution
backend.  Everything the forward path is sensitive to (step counter,
Langevin RNG stream position, the checkpointed step's force result,
neighbor-topology reference, trajectory offsets) must round-trip
through the ``.npz``.
"""

import numpy as np
import pytest

from repro.md import (AsyncTrajectoryWriter, LangevinThermostat, MDLoop,
                      TrajectoryReader, build_engine, load_checkpoint,
                      write_checkpoint)
from repro.md.dump import TrajectoryWriter, checkpoint_path
from repro.potentials import LennardJones
from repro.structures import lattice_system

BACKENDS = {
    "serial": {},
    "distributed": {"nranks": 4},
    "process": {"backend": "process", "nprocs": 2},
}


def _setup(vel_seed=5):
    s = lattice_system("fcc", a=2.5, reps=(3, 3, 3))
    s.seed_velocities(40.0, rng=np.random.default_rng(vel_seed))
    return s, LennardJones(epsilon=0.2, sigma=2.2, cutoff=3.0)


def _loop(engine, thermo_seed=7, **kw):
    return MDLoop(engine, dt=1e-3,
                  thermostat=LangevinThermostat(40.0, damp=0.5,
                                                seed=thermo_seed), **kw)


def _thermo_rows(loop):
    return [(e.step, e.temperature, e.potential_energy, e.kinetic_energy,
             e.total_energy) for e in loop.thermo_log]


# ======================================================================
# atomic checkpoint files (satellites)
# ======================================================================
class TestCheckpointFiles:
    def test_suffix_normalized_on_write_and_read(self, tmp_path):
        s, _pot = _setup()
        out = write_checkpoint(tmp_path / "state", s, step=3)
        assert out == tmp_path / "state.npz"
        ck = load_checkpoint(tmp_path / "state")  # reader normalizes too
        assert ck.step == 3
        assert np.array_equal(ck.system.positions, s.positions)

    def test_write_is_atomic_no_temp_left_behind(self, tmp_path):
        s, _pot = _setup()
        write_checkpoint(tmp_path / "ck.npz", s, step=1)
        write_checkpoint(tmp_path / "ck.npz", s, step=2)  # overwrite path
        assert [p.name for p in tmp_path.iterdir()] == ["ck.npz"]
        assert load_checkpoint(tmp_path / "ck.npz").step == 2

    def test_extra_key_collision_rejected(self, tmp_path):
        s, _pot = _setup()
        with pytest.raises(ValueError):
            write_checkpoint(tmp_path / "ck", s,
                             extra={"positions": np.zeros(3)})

    def test_extras_round_trip(self, tmp_path):
        s, _pot = _setup()
        write_checkpoint(tmp_path / "ck", s, step=9,
                         extra={"my_state": np.arange(4)})
        ck = load_checkpoint(tmp_path / "ck")
        assert np.array_equal(ck.extras["my_state"], np.arange(4))
        assert "positions" not in ck.extras

    def test_checkpoint_path_helper(self):
        assert checkpoint_path("a/b").name == "b.npz"
        assert checkpoint_path("a/b.npz").name == "b.npz"

    def test_legacy_writer_close_clears_and_append_raises(self, tmp_path):
        s, _pot = _setup()
        w = TrajectoryWriter(tmp_path / "legacy")
        w.append(s, 0)
        w.close()
        assert w._frames == [] and w._steps == []
        with pytest.raises(RuntimeError):
            w.append(s, 1)
        w.close()  # idempotent: must not rewrite the file with 0 frames
        with np.load(tmp_path / "legacy.npz") as data:
            assert data["positions"].shape[0] == 1


# ======================================================================
# bitwise resume, every backend
# ======================================================================
class TestBitwiseRestart:
    N, K = 8, 4

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_resumed_equals_uninterrupted(self, backend, tmp_path):
        kw = BACKENDS[backend]
        ck = tmp_path / "ck"
        ref_trj, res_trj = tmp_path / "ref.trj", tmp_path / "res.trj"

        # the run that never stops
        s, pot = _setup()
        with build_engine(s, pot, **kw) as engine, \
                AsyncTrajectoryWriter(ref_trj, natoms=s.natoms) as w:
            loop = _loop(engine, trajectory=w, trajectory_every=2,
                         trajectory_velocities=True)
            loop.run(self.N, thermo_every=1)
        ref_pos, ref_vel = s.positions.copy(), s.velocities.copy()
        ref_thermo = _thermo_rows(loop)

        # the run that dies one step past its checkpoint
        s2, pot2 = _setup()
        with build_engine(s2, pot2, **kw) as engine2, \
                AsyncTrajectoryWriter(res_trj, natoms=s2.natoms) as w2:
            loop2 = _loop(engine2, trajectory=w2, trajectory_every=2,
                          trajectory_velocities=True,
                          checkpoint_every=self.K, checkpoint_path=ck)
            loop2.run(self.K + 1, thermo_every=1)

        # resume into a fresh, differently-seeded world: every bit of
        # forward-path state must come from the checkpoint, not luck
        s3, pot3 = _setup(vel_seed=42)
        with build_engine(s3, pot3, **kw) as engine3, \
                AsyncTrajectoryWriter(res_trj, natoms=s3.natoms,
                                      mode="a") as w3:
            loop3 = _loop(engine3, thermo_seed=99, trajectory=w3,
                          trajectory_every=2, trajectory_velocities=True)
            assert loop3.restore(ck) == self.K
            loop3.run(self.N - self.K, thermo_every=1)

        assert np.array_equal(s3.positions, ref_pos)
        assert np.array_equal(s3.velocities, ref_vel)
        assert _thermo_rows(loop3) == ref_thermo[self.K + 1:]
        assert ref_trj.read_bytes() == res_trj.read_bytes()

    def test_step_counter_and_cadences_resume(self, tmp_path):
        s, pot = _setup()
        with build_engine(s, pot) as engine:
            loop = _loop(engine, checkpoint_every=3,
                         checkpoint_path=tmp_path / "ck")
            loop.run(3)
            assert loop.step == 3
        s2, pot2 = _setup(vel_seed=11)
        with build_engine(s2, pot2) as engine2:
            loop2 = _loop(engine2)
            assert loop2.restore(tmp_path / "ck") == 3
            loop2.run(2, thermo_every=1)
            assert loop2.step == 5
            assert [e.step for e in loop2.thermo_log] == [4, 5]

    def test_trajectory_rolled_back_to_checkpoint(self, tmp_path):
        trj = tmp_path / "t.trj"
        s, pot = _setup()
        with build_engine(s, pot) as engine, \
                AsyncTrajectoryWriter(trj, natoms=s.natoms) as w:
            loop = _loop(engine, trajectory=w, trajectory_every=1,
                         checkpoint_every=2, checkpoint_path=tmp_path / "ck")
            loop.run(4)  # frames at steps 0..4, checkpoints at 2 and 4
        # overwrite the checkpoint with the step-2 one: rerun to get it
        s1, pot1 = _setup()
        with build_engine(s1, pot1) as engine1, \
                AsyncTrajectoryWriter(tmp_path / "x.trj",
                                      natoms=s1.natoms) as w1:
            _loop(engine1, trajectory=w1, trajectory_every=1,
                  checkpoint_every=2,
                  checkpoint_path=tmp_path / "ck2").run(2)
        s2, pot2 = _setup(vel_seed=11)
        with build_engine(s2, pot2) as engine2, \
                AsyncTrajectoryWriter(trj, natoms=s2.natoms, mode="a") as w2:
            loop2 = _loop(engine2, trajectory=w2, trajectory_every=1)
            loop2.restore(tmp_path / "ck2")
            # frames past step 2 (lost work) were truncated on restore
            assert w2.checkpoint_state()[1] == 3
        with TrajectoryReader(trj) as r:
            assert np.array_equal(r.steps(), [0, 1, 2])

    def test_legacy_checkpoint_without_extras_still_restores(self, tmp_path):
        s, pot = _setup()
        with build_engine(s, pot) as engine:
            loop = _loop(engine)
            loop.run(2)
            write_checkpoint(tmp_path / "bare", loop.system, step=loop.step)
        s2, pot2 = _setup(vel_seed=12)
        with build_engine(s2, pot2) as engine2:
            loop2 = _loop(engine2)
            assert loop2.restore(tmp_path / "bare") == 2
            assert np.array_equal(loop2.system.positions, s.positions)
            loop2.run(1)  # no stored force result: re-evaluates, still runs
            assert loop2.step == 3


# ======================================================================
# checkpoint extras carry the full forward-path state
# ======================================================================
class TestCheckpointExtras:
    def test_extras_hold_rng_topology_forces_and_offsets(self, tmp_path):
        s, pot = _setup()
        with build_engine(s, pot) as engine, \
                AsyncTrajectoryWriter(tmp_path / "t.trj",
                                      natoms=s.natoms) as w:
            loop = _loop(engine, trajectory=w, trajectory_every=1)
            loop.run(2)
            loop.write_checkpoint(tmp_path / "ck")
        ck = load_checkpoint(tmp_path / "ck")
        for key in ("thermostat_rng", "topology_ref", "traj_offset",
                    "last_energy", "last_forces"):
            assert key in ck.extras, key
        assert ck.extras["last_forces"].shape == (s.natoms, 3)
        assert ck.extras["traj_offset"][1] == 3  # frames at steps 0, 1, 2

    def test_restore_rejects_wrong_natoms(self, tmp_path):
        s, pot = _setup()
        write_checkpoint(tmp_path / "ck", s, step=1)
        small = lattice_system("fcc", a=2.5, reps=(2, 2, 2))
        small.seed_velocities(40.0, rng=np.random.default_rng(1))
        with build_engine(small, LennardJones(epsilon=0.2, sigma=2.2,
                                              cutoff=3.0)) as engine:
            with pytest.raises(ValueError):
                _loop(engine).restore(tmp_path / "ck")
