"""Runtime sanitizers: NaN/Inf kernel guards and the scatter-add race
detector, wired through ``SNAPParams.check_finite`` and the
``check_finite`` / ``race_check`` flags of ``DistributedSimulation``.

Covers the acceptance criteria of the lint PR:

* an injected NaN in a force kernel is caught with the offending phase
  (and rank, in the distributed driver) named,
* a deliberately overlapping concurrent scatter-add triggers the race
  detector, and
* a real 4-rank x 2-worker run reports zero overlaps in both halo
  modes.
"""

import threading

import numpy as np
import pytest

from repro.core import SNAP, SNAPParams
from repro.lint.sanitizers import (NumericsError, RaceDetector, RaceError,
                                   check_finite)
from repro.md import build_pairs
from repro.parallel import DistributedSimulation
from repro.parallel.shards import ShardedSNAP
from repro.potentials import SNAPPotential
from repro.structures import lattice_system


def snap_carbon(rng, reps=(3, 3, 3), jitter=0.03, **params):
    p = SNAPParams(twojmax=4, rcut=2.4, **params)
    pot = SNAPPotential(p, beta=rng.normal(
        size=SNAPPotential(p).snap.index.ncoeff))
    s = lattice_system("diamond", a=3.57, reps=reps)
    s.positions = s.positions + rng.normal(scale=jitter,
                                           size=s.positions.shape)
    return s, pot


class _PoisonOnCall:
    """Potential wrapper that poisons forces on the Nth compute() call."""

    def __init__(self, inner, poison_call):
        self.inner = inner
        self.poison_call = poison_call
        self.calls = 0
        self._lock = threading.Lock()

    @property
    def cutoff(self):
        return self.inner.cutoff

    def compute(self, natoms, nbr):
        result = self.inner.compute(natoms, nbr)
        with self._lock:
            self.calls += 1
            poison = self.calls == self.poison_call
        if poison and result.forces.size:
            result.forces[0, 0] = np.nan
        return result


# ======================================================================
# check_finite
# ======================================================================
class TestCheckFinite:
    def test_clean_arrays_pass(self):
        check_finite("stage", x=np.ones(4), y=np.zeros((2, 3)))

    def test_nan_raises_with_phase_and_name(self):
        arr = np.ones(5)
        arr[3] = np.nan
        with pytest.raises(NumericsError,
                           match=r"phase 'compute_yi'.*\by\b.*1/5.*index 3"):
            check_finite("compute_yi", x=np.ones(2), y=arr)

    def test_inf_raises(self):
        with pytest.raises(NumericsError, match="compute_ui"):
            check_finite("compute_ui", utot=np.array([1.0, np.inf]))

    def test_where_context_in_message(self):
        with pytest.raises(NumericsError, match=r"\[rank2\]"):
            check_finite("rank_force", where="rank2",
                         forces=np.array([np.nan]))

    def test_complex_arrays_checked(self):
        with pytest.raises(NumericsError):
            check_finite("stage", z=np.array([1 + 1j, np.nan + 0j]))

    def test_integer_and_none_skipped(self):
        check_finite("stage", idx=np.arange(3), missing=None)

    def test_scalars_accepted(self):
        check_finite("stage", energy=1.5)
        with pytest.raises(NumericsError):
            check_finite("stage", energy=float("nan"))


# ======================================================================
# NaN guard on the kernels
# ======================================================================
class TestKernelGuards:
    def test_serial_snap_catches_poisoned_input(self, rng):
        s, pot = snap_carbon(rng, check_finite=True)
        s.positions[0, 0] = np.nan
        nbr = build_pairs(np.nan_to_num(s.positions), s.box, pot.cutoff)
        nbr.rij[0, 0] = np.nan  # poison one pair vector
        with pytest.raises(NumericsError, match="neighbor_input"):
            pot.compute(s.natoms, nbr)

    def test_serial_snap_catches_poisoned_coefficients(self, rng):
        s, pot = snap_carbon(rng, check_finite=True)
        pot.snap.beta[1] = np.nan  # poisons Y/peratom, not U
        nbr = build_pairs(s.positions, s.box, pot.cutoff)
        with pytest.raises(NumericsError, match="compute_yi"):
            pot.compute(s.natoms, nbr)

    def test_off_by_default_lets_nan_through(self, rng):
        s, pot = snap_carbon(rng)
        assert pot.snap.params.check_finite is False
        pot.snap.beta[1] = np.nan
        nbr = build_pairs(s.positions, s.box, pot.cutoff)
        result = pot.compute(s.natoms, nbr)  # no raise: sanitizer off
        assert np.isnan(result.energy)

    def test_sharded_snap_catches_poisoned_coefficients(self, rng):
        params = SNAPParams(twojmax=4, rcut=2.4, check_finite=True)
        snap = SNAP(params, beta=rng.normal(
            size=SNAP(params).index.ncoeff))
        snap.beta[1] = np.nan
        s = lattice_system("diamond", a=3.57, reps=(2, 2, 2))
        nbr = build_pairs(s.positions, s.box, params.rcut)
        with ShardedSNAP(snap, nworkers=2) as sharded:
            with pytest.raises(NumericsError, match=r"compute_yi.*sharded"):
                sharded.compute(s.natoms, nbr)

    def test_distributed_names_offending_rank(self, rng):
        s, pot = snap_carbon(rng)
        poisoned = _PoisonOnCall(pot, poison_call=3)
        dsim = DistributedSimulation(s, poisoned, nranks=4,
                                     check_finite=True)
        with pytest.raises(NumericsError,
                           match=r"phase 'rank_force' \[rank2\]"):
            dsim.compute_forces()
        dsim.close()


# ======================================================================
# RaceDetector unit behavior
# ======================================================================
class TestRaceDetector:
    def test_disjoint_writers_clean(self):
        det = RaceDetector()
        det.begin_epoch()
        det.record("forces.scatter", "rank0", np.arange(0, 10))
        det.record("forces.scatter", "rank1", np.arange(10, 20))
        assert det.check() == []
        assert det.reports == []

    def test_overlap_detected_with_attribution(self):
        det = RaceDetector()
        det.begin_epoch()
        det.record("forces.scatter", "rank0", np.arange(0, 12))
        det.record("forces.scatter", "rank1", np.arange(8, 20))
        with pytest.raises(RaceError, match="rank0 and rank1"):
            det.check()
        assert det.reports[0].phase == "forces.scatter"
        assert det.reports[0].count == 4

    def test_serialized_overlap_is_exempt(self):
        det = RaceDetector()
        det.begin_epoch()
        det.record("comm.reverse", "rank0", np.arange(0, 12),
                   serialized=True)
        det.record("comm.reverse", "rank1", np.arange(8, 20),
                   serialized=True)
        assert det.check() == []

    def test_phases_do_not_cross_talk(self):
        det = RaceDetector()
        det.begin_epoch()
        det.record("phase_a", "rank0", np.arange(0, 10))
        det.record("phase_b", "rank1", np.arange(5, 15))
        assert det.check() == []

    def test_epoch_reset_clears_records(self):
        det = RaceDetector(raise_on_overlap=False)
        det.begin_epoch()
        det.record("p", "a", np.arange(4))
        det.record("p", "b", np.arange(4))
        assert len(det.check()) == 1
        det.begin_epoch()
        assert det.check() == []
        assert det.epochs == 2

    def test_interval_quick_reject_still_finds_sparse_overlap(self):
        det = RaceDetector()
        det.begin_epoch()
        # interleaved but disjoint index sets: intervals overlap, rows don't
        det.record("p", "even", np.arange(0, 20, 2))
        det.record("p", "odd", np.arange(1, 20, 2))
        assert det.check() == []
        # one shared row buried in overlapping intervals
        det.begin_epoch()
        det.record("p", "even", np.arange(0, 20, 2))
        det.record("p", "odd", np.append(np.arange(1, 20, 2), 10))
        with pytest.raises(RaceError, match=r"\[10\]"):
            det.check()

    def test_concurrent_recording_is_thread_safe(self):
        det = RaceDetector()
        det.begin_epoch()

        def writer(w):
            for i in range(50):
                det.record("p", f"w{w}", np.array([w * 10_000 + i]))

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(det.records) == 200
        assert det.check() == []


# ======================================================================
# race detector wired through the distributed driver
# ======================================================================
class TestDistributedRaceCheck:
    @pytest.mark.parametrize("mode,skin", [("1x", 0.3), ("2x", 0.1)])
    def test_real_run_reports_zero_overlaps(self, rng, mode, skin):
        s, pot = snap_carbon(rng)
        dsim = DistributedSimulation(s, pot, nranks=4, nworkers=2,
                                     halo_mode=mode, skin=skin,
                                     race_check=True)
        dsim.run(2)
        assert dsim.race_detector.reports == []
        assert dsim.race_detector.epochs == 3  # initial eval + 2 steps
        dsim.close()

    def test_synthetic_overlapping_scatter_add_is_flagged(self, rng):
        s, pot = snap_carbon(rng)
        dsim = DistributedSimulation(s, pot, nranks=4, nworkers=2,
                                     race_check=True)
        dsim.compute_forces()
        # corrupt rank ownership: rank1 now claims three of rank0's rows,
        # which makes the concurrent owned-row scatter-adds overlap
        dsim._ranks[1].owned[:3] = dsim._ranks[0].owned[:3]
        with pytest.raises(RaceError,
                           match=r"forces\.scatter.*rank0 and rank1"):
            dsim.compute_forces()
        assert dsim.race_detector.reports[0].count == 3
        dsim.close()

    def test_detector_absent_when_flag_off(self, rng):
        s, pot = snap_carbon(rng)
        dsim = DistributedSimulation(s, pot, nranks=2)
        assert dsim.race_detector is None
        dsim.compute_forces()
        dsim.close()

    def test_sanitized_run_matches_clean_run(self, rng):
        """Sanitizers observe; they must not change the physics."""
        s, pot = snap_carbon(rng)
        ref = DistributedSimulation(s.copy(), pot, nranks=4, nworkers=2)
        e0, f0 = ref.compute_forces()
        ref.close()
        chk = DistributedSimulation(s.copy(), pot, nranks=4, nworkers=2,
                                    check_finite=True, race_check=True)
        e1, f1 = chk.compute_forces()
        chk.close()
        assert e0 == e1
        assert np.array_equal(f0, f1)
