"""Engine sessions + batched segment service (ISSUE 10).

Covers the three layers of the refactor: the :meth:`ForceEngine.bind`
contract (a rebound live engine is bitwise-identical to a freshly
constructed one, on every backend), the in-memory
snapshot/restore-snapshot path against the file-checkpoint baseline,
and the :class:`SegmentScheduler` service semantics - idempotent
resubmission, the segment cache, deterministic splicing, and
worker-death rescheduling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rng import SeedStream
from repro.md import MDLoop, build_engine
from repro.md.engine import EngineSession
from repro.md.integrators import LangevinThermostat
from repro.parsplice import (MDSegmentGenerator, SegmentScheduler,
                             ServiceSegmentGenerator, measured_md_rate,
                             run_md_segment, run_parsplice,
                             run_parsplice_service)
from repro.potentials import LennardJones
from repro.structures import lattice_system

BACKENDS = [
    pytest.param(dict(), id="serial"),
    pytest.param(dict(nranks=2), id="distributed"),
    pytest.param(dict(backend="process", nprocs=2), id="process"),
]


def _pot():
    return LennardJones(epsilon=0.2, sigma=2.2, cutoff=3.0)


def _state(jitter_seed=None):
    # 3 reps along x so a 2-rank domain split stays above the cutoff
    s = lattice_system("fcc", a=2.5, reps=(3, 2, 2))
    if jitter_seed is not None:
        rng = np.random.default_rng(jitter_seed)
        s.positions = s.positions + rng.normal(scale=0.02,
                                               size=s.positions.shape)
    return s


def _library(n=3):
    return [_state(None if i == 0 else i) for i in range(n)]


def _run_segment_on(engine, system, nsteps=8, seed=4):
    sys_run = system.copy()
    sys_run.seed_velocities(60.0, rng=np.random.default_rng(seed))
    loop = MDLoop(engine, dt=1e-3,
                  thermostat=LangevinThermostat(temp=60.0, damp=0.1,
                                                seed=seed))
    loop.run(nsteps)
    return sys_run.positions.copy(), sys_run.velocities.copy()


# ======================================================================
# SeedStream
# ======================================================================
class TestSeedStream:
    def test_root_matches_default_rng(self):
        a = SeedStream(1234).generator().normal(size=8)
        b = np.random.default_rng(1234).normal(size=8)
        assert np.array_equal(a, b)

    def test_child_keys_are_stateless_and_deterministic(self):
        s = SeedStream(7)
        a = s.child("segment", 3, 5)
        b = s.child("segment", 3, 5)
        assert a == b
        assert np.array_equal(a.generator().normal(size=4),
                              b.generator().normal(size=4))
        # order-of-derivation independence: deriving other children
        # first never perturbs a keyed stream
        s.child("other", 0)
        c = s.child("segment", 3, 5)
        assert np.array_equal(c.generator().normal(size=4),
                              a.generator().normal(size=4))

    def test_distinct_keys_distinct_streams(self):
        s = SeedStream(7)
        draws = {tuple(s.child("segment", i, j).generator().integers(
            0, 2**32, size=2)) for i in range(3) for j in range(3)}
        assert len(draws) == 9

    def test_spawn_is_sequential_and_unique(self):
        s = SeedStream(11)
        a, b = s.spawn(), s.spawn()
        assert a != b
        t = SeedStream(11)
        c, d = t.spawn_many(2)
        assert (a, b) == (c, d)

    def test_state_round_trip(self):
        s = SeedStream(3).child("x", 2)
        r = SeedStream.from_state(s.state())
        assert r == s
        assert np.array_equal(r.generator().normal(size=3),
                              s.generator().normal(size=3))

    def test_integer_fits_requested_bits(self):
        v = SeedStream(5).child("thermostat").integer(bits=31)
        assert 0 <= v < 2**31


# ======================================================================
# bind contract + snapshot/restore
# ======================================================================
class TestBindContract:
    @pytest.mark.parametrize("engine_kwargs", BACKENDS)
    def test_bound_engine_bitwise_matches_fresh(self, engine_kwargs):
        pot = _pot()
        state_a, state_b = _state(1), _state(2)
        # dirty the engine on state A, then rebind to state B
        with build_engine(state_a.copy(), pot, **engine_kwargs) as engine:
            _run_segment_on(engine, engine.system)
            target = state_b.copy()
            engine.bind(target)
            pos_bound, vel_bound = _run_segment_on(engine, target)
        with build_engine(state_b.copy(), pot, **engine_kwargs) as engine:
            pos_fresh, vel_fresh = _run_segment_on(engine, engine.system)
        assert np.array_equal(pos_bound, pos_fresh)
        assert np.array_equal(vel_bound, vel_fresh)

    def test_process_bind_rejects_shape_changes(self):
        pot = _pot()
        with build_engine(_state(), pot, backend="process",
                          nprocs=2) as engine:
            bigger = lattice_system("fcc", a=2.5, reps=(4, 2, 2))
            with pytest.raises(ValueError):
                engine.bind(bigger)

    @pytest.mark.parametrize("engine_kwargs", BACKENDS)
    def test_snapshot_replay_matches_file_restore(self, engine_kwargs,
                                                  tmp_path):
        pot = _pot()
        sys_run = _state(1)
        sys_run.seed_velocities(60.0, rng=np.random.default_rng(2))
        ck = tmp_path / "mid.ckpt"
        with build_engine(sys_run, pot, **engine_kwargs) as engine:
            loop = MDLoop(engine, dt=1e-3,
                          thermostat=LangevinThermostat(temp=60.0, damp=0.1,
                                                        seed=3),
                          checkpoint_every=3, checkpoint_path=ck)
            loop.run(3)
            snap = loop.snapshot()
            # stop checkpointing: the replay runs below would overwrite
            # the step-3 file at step 6 and break the file baseline
            loop.checkpoint_every = 0
            # replaying the same snapshot twice gives the identical
            # continuation regardless of intervening loop state
            loop.restore_snapshot(snap)
            loop.run(4)
            pos_first = loop.system.positions.copy()
            loop.restore_snapshot(snap)
            loop.run(4)
            assert np.array_equal(loop.system.positions, pos_first)
            # and matches the file-checkpoint restore bitwise
            loop.restore(ck)
            loop.run(4)
            assert np.array_equal(loop.system.positions, pos_first)

    def test_session_counts_reuse(self):
        pot = _pot()
        session = EngineSession.build(_state(), pot)
        with session:
            for k in range(3):
                sys_k = _state(k)
                session.run(sys_k, 2, thermostat=LangevinThermostat(
                    temp=60.0, damp=0.1, seed=k))
            assert session.segments == 3
            assert session.binds == 3
            assert session.steps == 6
            assert session.md_wall_s > 0
        assert session.closed
        with pytest.raises(RuntimeError):
            session.bind(_state())


# ======================================================================
# segment service
# ======================================================================
class TestSegmentService:
    def test_idempotent_resubmission_across_sessions(self):
        """Same (state, seed) is the bitwise-identical segment on any
        session of the pool, any resubmission, and on a lone session."""
        states, pot = _library(), _pot()
        with SegmentScheduler(states, pot, nworkers=2, nsteps=6,
                              seed=7, cache_limit=0) as sched:
            futs = [sched.request(1, seed=5) for _ in range(4)]
            prints = {f.result().fingerprint for f in futs}
        assert len(prints) == 1
        with MDSegmentGenerator(states, pot, nsteps=6, seed=7) as gen:
            lone = gen.generate(1, seed=5)
        assert lone.fingerprint in prints

    def test_cache_hit_path_skips_md(self):
        states, pot = _library(), _pot()
        with SegmentScheduler(states, pot, nworkers=1, nsteps=6,
                              seed=7) as sched:
            first = sched.request(2, seed=0).result()
            runs = sched.stats.segments_run
            again = sched.request(2, seed=0).result()
            assert sched.stats.segments_run == runs  # no MD re-run
            assert sched.stats.cache_hits >= 1
            assert again.fingerprint == first.fingerprint

    def test_sequential_seeds_differ_per_state(self):
        states, pot = _library(), _pot()
        with SegmentScheduler(states, pot, nworkers=1, nsteps=6,
                              seed=7) as sched:
            a = sched.request(0).result()
            b = sched.request(0).result()
        assert (a.seed, b.seed) == (0, 1)
        assert a.fingerprint != b.fingerprint

    def test_worker_death_reschedules_on_replacement_session(self):
        states, pot = _library(), _pot()

        class FlakySession:
            """Dies on its first run, then delegates to a real session."""

            def __init__(self, real):
                self._real = real
                self._poisoned = True

            def run(self, *args, **kwargs):
                if self._poisoned:
                    self._poisoned = False
                    raise RuntimeError("engine died")
                return self._real.run(*args, **kwargs)

            def __getattr__(self, name):
                return getattr(self._real, name)

        built = []

        def factory():
            real = EngineSession.build(states[0].copy(), pot)
            built.append(real)
            return FlakySession(real) if len(built) == 1 else real

        with SegmentScheduler(states, session_factory=factory, nworkers=1,
                              nsteps=6, seed=7) as sched:
            seg = sched.request(1, seed=5).result()
            assert sched.stats.reschedules >= 1
            assert sched.stats.sessions_replaced >= 1
        # the rescheduled segment is bitwise what a healthy run produces
        with SegmentScheduler(states, pot, nworkers=1, nsteps=6,
                              seed=7) as sched:
            healthy = sched.request(1, seed=5).result()
        assert seg.fingerprint == healthy.fingerprint

    def test_exhausted_retries_fail_the_future_not_the_service(self):
        states, pot = _library(), _pot()

        class DeadSession:
            def run(self, *args, **kwargs):
                raise RuntimeError("permanently dead")

            def bind(self, system):
                pass

            def close(self):
                pass

        with SegmentScheduler(states, session_factory=DeadSession,
                              nworkers=1, nsteps=6, seed=7,
                              max_retries=1) as sched:
            with pytest.raises(RuntimeError, match="failed after 2"):
                sched.request(0, seed=0).result()

    def test_splice_order_is_submission_order(self):
        """The official trajectory is a pure function of the request
        sequence, not of worker completion order."""
        states, pot = _library(), _pot()

        def campaign(nworkers):
            with SegmentScheduler(states, pot, nworkers=nworkers, nsteps=6,
                                  seed=7, initial_state=0) as sched:
                sched.gather(sched.request_batch([2, 2, 2]))
                return (sched.trajectory_ps, sched.current_state,
                        sched.splicer.n_spliced)

        assert campaign(1) == campaign(3)

    def test_run_parsplice_over_md_generator(self):
        states, pot = _library(), _pot()
        with MDSegmentGenerator(states, pot, nsteps=6, seed=7) as gen:
            run = run_parsplice(nworkers=2, quanta=2, generator=gen)
        assert run.n_generated == 4
        assert run.trajectory_time > 0
        assert run.generated_time == pytest.approx(4 * gen.t_segment)

    def test_run_parsplice_over_service_adapter(self):
        states, pot = _library(), _pot()
        with SegmentScheduler(states, pot, nworkers=2, nsteps=6,
                              seed=7) as sched:
            gen = ServiceSegmentGenerator(sched)
            run = run_parsplice(nworkers=2, quanta=2, generator=gen)
            assert run.n_generated == 4
            assert sched.stats.segments_run <= 4  # cache may dedup

    def test_run_parsplice_service_campaign(self):
        states, pot = _library(), _pot()
        run = run_parsplice_service(states, pot, nworkers=2, quanta=2,
                                    nsteps=6, seed=3)
        assert run.n_spliced >= 1
        assert run.trajectory_ps > 0
        assert len(run.session_stats) == 2
        assert "sessions" in run.summary()


# ======================================================================
# calibration over a live session (satellite: oracle/exaalt engine=)
# ======================================================================
class TestCalibrationOverSession:
    def test_measured_md_rate_reuses_session(self):
        pot = _pot()
        with EngineSession.build(_state(), pot) as session:
            rate1 = measured_md_rate(_state(1), nsteps=2, engine=session)
            rate2 = measured_md_rate(_state(2), nsteps=2, engine=session)
            assert rate1 > 0 and rate2 > 0
            assert not session.closed
            assert session.binds >= 2

    def test_measured_md_rate_requires_potential_or_engine(self):
        with pytest.raises(ValueError):
            measured_md_rate(_state(), nsteps=2)

    def test_calibrated_config_over_session(self):
        from repro.exaalt import calibrated_config

        pot = _pot()
        with EngineSession.build(_state(), pot) as session:
            cfg = calibrated_config(_state(1), t_segment=0.002,
                                    engine=session, n_workers=10)
            assert cfg.task_duration_mean > 0
            assert cfg.n_workers == 10
            assert not session.closed


# ======================================================================
# soak matrix (excluded from tier-1; run with -m slow)
# ======================================================================
@pytest.mark.slow
@pytest.mark.parametrize("engine_kwargs", BACKENDS)
@pytest.mark.parametrize("nworkers", [1, 2, 4])
def test_soak_matrix_bitwise_across_pool_shapes(nworkers, engine_kwargs):
    """Every (nworkers, backend) cell serves the same segments as one
    lone session of that backend, bitwise - pool size and request
    interleaving never leak into the physics.  (The distributed backend
    is only ``allclose`` to serial - different summation order - so the
    reference is per-backend, not cross-backend.)"""
    states, pot = _library(), _pot()
    jobs = [(k % 3, k) for k in range(6)]
    with SegmentScheduler(states, pot, nworkers=nworkers, nsteps=6,
                          seed=7, **engine_kwargs) as sched:
        futs = [sched.request(s, seed=k) for s, k in jobs]
        prints = [f.result().fingerprint for f in futs]
        assert sched.stats.segments_run == len(jobs)
    with MDSegmentGenerator(states, pot, nsteps=6, seed=7,
                            **engine_kwargs) as gen:
        expected = [gen.generate(s, seed=k).fingerprint for s, k in jobs]
    assert prints == expected
