"""Tests for the serial MD driver, timers, and checkpoint I/O."""

import numpy as np
import pytest

from repro.md import (LangevinThermostat, PhaseTimers, Simulation,
                      read_checkpoint, write_checkpoint)
from repro.md.dump import TrajectoryWriter
from repro.potentials import LennardJones
from repro.structures import lattice_system


@pytest.fixture
def lj_sim(rng):
    s = lattice_system("fcc", a=1.7, reps=(2, 2, 2), mass=39.95)
    s.seed_velocities(30.0, rng=rng)
    return Simulation(s, LennardJones(epsilon=0.0104, sigma=1.0, cutoff=2.5),
                      dt=2e-3)


class TestPhaseTimers:
    def test_accumulate(self):
        t = PhaseTimers()
        with t.phase("a"):
            pass
        t.add("a", 1.0)
        t.add("b", 3.0)
        assert t.totals["a"] >= 1.0
        assert t.total == pytest.approx(t.totals["a"] + 3.0)

    def test_fractions_sum_to_one(self):
        t = PhaseTimers()
        t.add("x", 1.0)
        t.add("y", 3.0)
        f = t.fractions()
        assert sum(f.values()) == pytest.approx(1.0)
        assert f["y"] == pytest.approx(0.75)

    def test_empty_fractions(self):
        assert PhaseTimers().fractions() == {}

    def test_reset(self):
        t = PhaseTimers()
        t.add("x", 1.0)
        t.reset()
        assert t.total == 0.0


class TestSimulation:
    def test_run_summary(self, lj_sim):
        out = lj_sim.run(20)
        assert out["steps"] == 20
        assert out["natoms"] == 32
        assert out["atom_steps_per_s"] > 0
        assert set(out["phase_fractions"]) >= {"force", "neigh", "other"}

    def test_thermo_log(self, lj_sim):
        lj_sim.run(20, thermo_every=5)
        steps = [e.step for e in lj_sim.thermo_log]
        assert steps == [0, 5, 10, 15, 20]
        for e in lj_sim.thermo_log:
            assert e.total_energy == pytest.approx(
                e.potential_energy + e.kinetic_energy)

    def test_negative_steps_rejected(self, lj_sim):
        with pytest.raises(ValueError):
            lj_sim.run(-1)

    def test_langevin_heats_cold_start(self, rng):
        s = lattice_system("fcc", a=1.7, reps=(2, 2, 2), mass=39.95)
        sim = Simulation(s, LennardJones(epsilon=0.0104, sigma=1.0, cutoff=2.5),
                         dt=2e-3,
                         thermostat=LangevinThermostat(temp=80.0, damp=0.02, seed=2))
        sim.run(200)
        assert s.temperature() > 20.0

    def test_checkpointing(self, lj_sim, tmp_path):
        path = tmp_path / "ck.npz"
        lj_sim.checkpoint_every = 10
        lj_sim.checkpoint_path = path
        lj_sim.run(20)
        assert path.exists()
        assert "io" in lj_sim.timers.totals
        system, step = read_checkpoint(path)
        assert step == 20
        assert np.allclose(system.positions, lj_sim.system.positions)


class TestCheckpointIO:
    def test_roundtrip(self, rng, tmp_path):
        s = lattice_system("diamond", a=3.57, reps=(1, 1, 1))
        s.seed_velocities(100.0, rng=rng)
        path = tmp_path / "state.npz"
        write_checkpoint(path, s, step=42)
        loaded, step = read_checkpoint(path)
        assert step == 42
        assert np.allclose(loaded.positions, s.positions)
        assert np.allclose(loaded.velocities, s.velocities)
        assert np.allclose(loaded.box.lengths, s.box.lengths)
        assert loaded.box.periodic == s.box.periodic

    def test_trajectory_writer(self, rng, tmp_path):
        s = lattice_system("sc", a=2.0, reps=(2, 2, 2))
        path = tmp_path / "traj.npz"
        with TrajectoryWriter(path) as tw:
            tw.append(s, 0)
            s.positions = s.positions + 0.1
            tw.append(s, 10)
        data = np.load(path)
        assert data["positions"].shape == (2, 8, 3)
        assert data["steps"].tolist() == [0, 10]
