"""Tests for the SNAP potential: invariances, forces, baseline agreement."""

import numpy as np
import pytest
from scipy.spatial.transform import Rotation

from conftest import fd_forces, free_cluster_pairs, random_cluster
from repro.core import SNAP, NeighborBatch, SNAPParams
from repro.core.baseline import (descriptor_gradients, reference_descriptors,
                                 reference_energy_forces)


def _env(rng, nn=8, rcut=3.0):
    """Random single-atom environment within the cutoff annulus."""
    rij = rng.normal(size=(nn, 3))
    rij /= np.linalg.norm(rij, axis=1)[:, None]
    rij *= rng.uniform(0.8, 0.9 * rcut, size=nn)[:, None]
    r = np.linalg.norm(rij, axis=1)
    return NeighborBatch(i_idx=np.zeros(nn, dtype=np.intp), rij=rij, r=r)


class TestDescriptors:
    def test_rotation_invariance(self, snap4, rng):
        nbr = _env(rng)
        b1 = snap4.compute_descriptors(1, nbr)
        rot = Rotation.random(random_state=7).as_matrix()
        rij2 = nbr.rij @ rot.T
        nbr2 = NeighborBatch(i_idx=nbr.i_idx, rij=rij2,
                             r=np.linalg.norm(rij2, axis=1))
        b2 = snap4.compute_descriptors(1, nbr2)
        assert np.allclose(b1, b2, rtol=1e-12, atol=1e-12)

    def test_permutation_invariance(self, snap4, rng):
        nbr = _env(rng)
        perm = rng.permutation(nbr.npairs)
        nbr2 = NeighborBatch(i_idx=nbr.i_idx, rij=nbr.rij[perm], r=nbr.r[perm])
        assert np.allclose(snap4.compute_descriptors(1, nbr),
                           snap4.compute_descriptors(1, nbr2))

    def test_matches_reference(self, snap4, rng):
        nbr = _env(rng)
        fast = snap4.compute_descriptors(1, nbr)
        ref = reference_descriptors(snap4, 1, nbr)
        assert np.allclose(fast, ref, atol=1e-10)

    def test_isolated_atom_nonzero_without_bzero(self, snap4):
        empty = NeighborBatch(i_idx=np.zeros(0, dtype=np.intp),
                              rij=np.zeros((0, 3)), r=np.zeros(0))
        b = snap4.compute_descriptors(1, empty)
        assert np.abs(b).max() > 0  # self-contribution only

    def test_bzero_removes_self_term(self, rng):
        params = SNAPParams(twojmax=4, rcut=3.0)
        snap = SNAP(params, bzero=True)
        empty = NeighborBatch(i_idx=np.zeros(0, dtype=np.intp),
                              rij=np.zeros((0, 3)), r=np.zeros(0))
        b = snap.compute_descriptors(1, empty)
        assert np.allclose(b, 0.0, atol=1e-12)

    def test_neighbor_outside_cutoff_ignored(self, snap4, rng):
        nbr = _env(rng, nn=5)
        far = np.array([[0.0, 0.0, 3.2]])  # beyond rcut=3.0
        nbr2 = NeighborBatch(
            i_idx=np.zeros(6, dtype=np.intp),
            rij=np.concatenate([nbr.rij, far]),
            r=np.concatenate([nbr.r, [3.2]]))
        assert np.allclose(snap4.compute_descriptors(1, nbr),
                           snap4.compute_descriptors(1, nbr2))

    def test_smooth_at_cutoff(self, snap4):
        # a neighbor crossing rcut changes B continuously (fc -> 0)
        base = _env(np.random.default_rng(0), nn=4)
        bs = []
        for eps in (1e-4, 1e-6):
            extra = np.array([[0.0, 0.0, 3.0 - eps]])
            nbr = NeighborBatch(i_idx=np.zeros(5, dtype=np.intp),
                                rij=np.concatenate([base.rij, extra]),
                                r=np.concatenate([base.r, [3.0 - eps]]))
            bs.append(snap4.compute_descriptors(1, nbr))
        b_no = snap4.compute_descriptors(1, base)
        assert np.abs(bs[1] - b_no).max() < 1e-8
        assert np.abs(bs[0] - b_no).max() < 1e-4


class TestForces:
    def _system(self, rng, natoms=6):
        pos = random_cluster(rng, natoms=natoms, span=4.0)
        return pos

    def test_finite_difference(self, snap4, rng):
        pos = self._system(rng)

        def energy(p):
            return snap4.compute(p.shape[0], free_cluster_pairs(p, 3.0)).energy

        res = snap4.compute(pos.shape[0], free_cluster_pairs(pos, 3.0))
        fd = fd_forces(energy, pos)
        assert np.allclose(res.forces, fd, atol=5e-6)

    def test_newton_third_law(self, snap4, rng):
        pos = self._system(rng)
        res = snap4.compute(pos.shape[0], free_cluster_pairs(pos, 3.0))
        assert np.allclose(res.forces.sum(axis=0), 0.0, atol=1e-10)

    def test_matches_reference_implementation(self, snap4, rng):
        pos = self._system(rng)
        nbr = free_cluster_pairs(pos, 3.0)
        fast = snap4.compute(pos.shape[0], nbr)
        ref = reference_energy_forces(snap4, pos.shape[0], nbr)
        assert fast.energy == pytest.approx(ref.energy, abs=1e-10)
        assert np.allclose(fast.forces, ref.forces, atol=1e-10)
        assert np.allclose(fast.virial, ref.virial, atol=1e-10)

    def test_chunk_size_independence(self, rng):
        pos = self._system(rng, natoms=8)
        nbr = free_cluster_pairs(pos, 3.0)
        beta = rng.normal(size=SNAP(SNAPParams(twojmax=4, rcut=3.0)).index.ncoeff)
        results = []
        for chunk in (1, 7, 1000):
            snap = SNAP(SNAPParams(twojmax=4, rcut=3.0, chunk=chunk), beta=beta)
            results.append(snap.compute(pos.shape[0], nbr))
        for r in results[1:]:
            assert np.allclose(r.forces, results[0].forces, atol=1e-12)
            assert r.energy == pytest.approx(results[0].energy)

    def test_energy_linear_in_beta(self, rng):
        pos = self._system(rng)
        nbr = free_cluster_pairs(pos, 3.0)
        params = SNAPParams(twojmax=4, rcut=3.0)
        nc = SNAP(params).index.ncoeff
        b1, b2 = rng.normal(size=nc), rng.normal(size=nc)
        e1 = SNAP(params, beta=b1).compute(pos.shape[0], nbr).energy
        e2 = SNAP(params, beta=b2).compute(pos.shape[0], nbr).energy
        e12 = SNAP(params, beta=b1 + b2).compute(pos.shape[0], nbr).energy
        assert e12 == pytest.approx(e1 + e2, rel=1e-10)

    def test_rotation_covariance_of_forces(self, snap4, rng):
        pos = self._system(rng)
        rot = Rotation.random(random_state=3).as_matrix()
        f1 = snap4.compute(pos.shape[0], free_cluster_pairs(pos, 3.0)).forces
        f2 = snap4.compute(pos.shape[0], free_cluster_pairs(pos @ rot.T, 3.0)).forces
        assert np.allclose(f2, f1 @ rot.T, atol=1e-9)

    def test_translation_invariance(self, snap4, rng):
        pos = self._system(rng)
        r1 = snap4.compute(pos.shape[0], free_cluster_pairs(pos, 3.0))
        r2 = snap4.compute(pos.shape[0], free_cluster_pairs(pos + 11.3, 3.0))
        assert r1.energy == pytest.approx(r2.energy)
        assert np.allclose(r1.forces, r2.forces, atol=1e-10)

    def test_requires_j_idx(self, snap4, rng):
        nbr = _env(rng)
        with pytest.raises(ValueError, match="j_idx"):
            snap4.compute(1, nbr)

    def test_timings_recorded(self, snap4, rng):
        pos = self._system(rng)
        snap4.compute(pos.shape[0], free_cluster_pairs(pos, 3.0))
        assert set(snap4.last_timings) == {"compute_ui", "compute_yi",
                                           "compute_dui_deidrj"}
        assert all(v >= 0 for v in snap4.last_timings.values())


class TestDescriptorGradients:
    def test_fd(self, snap4, rng):
        pos = random_cluster(rng, natoms=4, span=3.0)
        n = pos.shape[0]
        nbr = free_cluster_pairs(pos, 3.0)
        db = descriptor_gradients(snap4, n, nbr)
        h = 1e-6
        # check dB_l(0)/dr_k for the first pair
        p0, k = 0, nbr.j_idx[0]
        for c in range(3):
            pp = pos.copy()
            pp[k, c] += h
            bp = snap4.compute_descriptors(n, free_cluster_pairs(pp, 3.0))[nbr.i_idx[0]]
            pp[k, c] -= 2 * h
            bm = snap4.compute_descriptors(n, free_cluster_pairs(pp, 3.0))[nbr.i_idx[0]]
            fd = (bp - bm) / (2 * h)
            assert np.allclose(db[p0, c], fd, atol=1e-5)


class TestParamsValidation:
    def test_bad_rcut(self):
        with pytest.raises(ValueError):
            SNAPParams(twojmax=4, rcut=0.5, rmin0=1.0)

    def test_bad_twojmax(self):
        with pytest.raises(ValueError):
            SNAPParams(twojmax=-2, rcut=3.0)

    def test_bad_chunk(self):
        with pytest.raises(ValueError):
            SNAPParams(twojmax=4, rcut=3.0, chunk=0)

    def test_bad_beta_shape(self):
        with pytest.raises(ValueError, match="beta"):
            SNAP(SNAPParams(twojmax=4, rcut=3.0), beta=np.ones(3))

    def test_default_beta(self):
        snap = SNAP(SNAPParams(twojmax=2, rcut=3.0))
        assert snap.beta[0] == 0.0
        assert np.all(snap.beta[1:] == 1.0)
