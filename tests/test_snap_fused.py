"""Fused SNAP hot path: store/recompute parity, sharding determinism.

The optimized evaluator has three independently toggleable pieces - the
stored-U cache (``store_u``), the segment-reduced accumulation and the
sharded force pass - and the contract for all of them is exact: forces
match the Listing-1 reference to 1e-10 and every configuration is
bitwise identical to every other (same arithmetic, different schedule).
"""

from dataclasses import replace

import numpy as np
import pytest

from conftest import free_cluster_pairs, random_cluster
from repro.core import SNAP, NeighborBatch, SNAPParams
from repro.core.baseline import reference_energy_forces
from repro.core.indexing import SNAPIndex
from repro.parallel.shards import ShardedSNAP, shard_bounds, sharded_potential


def _snap(rng, twojmax, **kw):
    params = SNAPParams(twojmax=twojmax, rcut=3.0, chunk=kw.pop("chunk", 32), **kw)
    return SNAP(params, beta=rng.normal(size=SNAPIndex(twojmax).ncoeff))


@pytest.fixture
def cluster(rng):
    pos = random_cluster(rng, natoms=6, span=4.0)
    return pos, free_cluster_pairs(pos, 3.0)


class TestStoreUParity:
    @pytest.mark.parametrize("twojmax", [4, 6, 8])
    @pytest.mark.parametrize("store_u", ["always", "never"])
    def test_matches_reference(self, rng, cluster, twojmax, store_u):
        pos, nbr = cluster
        snap = _snap(rng, twojmax, store_u=store_u)
        out = snap.compute(pos.shape[0], nbr)
        ref = reference_energy_forces(snap, pos.shape[0], nbr)
        assert out.energy == pytest.approx(ref.energy, abs=1e-10)
        assert np.allclose(out.forces, ref.forces, atol=1e-10)
        assert np.allclose(out.virial, ref.virial, atol=1e-10)

    def test_store_vs_recompute_bitwise(self, rng, cluster):
        # identical arithmetic on identical inputs: not just close, equal
        pos, nbr = cluster
        beta = rng.normal(size=SNAPIndex(6).ncoeff)
        results = {}
        for mode in ("always", "never"):
            snap = SNAP(SNAPParams(twojmax=6, rcut=3.0, chunk=16, store_u=mode),
                        beta=beta)
            results[mode] = snap.compute(pos.shape[0], nbr)
            assert snap.last_store_u == (mode == "always")
        assert np.array_equal(results["always"].forces, results["never"].forces)
        assert results["always"].energy == results["never"].energy
        assert np.array_equal(results["always"].virial, results["never"].virial)

    def test_auto_resolution(self):
        snap = SNAP(SNAPParams(twojmax=8, rcut=3.0, store_u="auto",
                               store_u_budget_mb=1.0))
        fits = int(1.0 * 2**20 / snap.store_u_bytes_per_pair)
        assert snap._resolve_store_u(fits)
        assert not snap._resolve_store_u(fits + 1)
        assert SNAP(SNAPParams(twojmax=8, rcut=3.0,
                               store_u="always"))._resolve_store_u(10**9)
        assert not SNAP(SNAPParams(twojmax=8, rcut=3.0,
                                   store_u="never"))._resolve_store_u(1)

    def test_byte_estimate_matches_cached_layout(self, rng, cluster):
        # the auto budget must count what the cache actually holds: the
        # half-plane column subset of each U layer, not the full plane
        pos, nbr = cluster
        for twojmax in (4, 6, 8):
            snap = _snap(rng, twojmax, store_u="always", chunk=nbr.npairs)
            cache = []
            snap.compute_utot(pos.shape[0], nbr, cache=cache)
            (ck, u_store, sfac, dsfac), = cache
            u_bytes = sum(layer.nbytes for layer in u_store)
            ck_bytes = sum(arr.nbytes for arr in (ck.a, ck.b, ck.da, ck.db))
            measured = (u_bytes + ck_bytes + sfac.nbytes + dsfac.nbytes)
            assert measured == snap.store_u_bytes_per_pair * nbr.npairs
            assert snap._nu_store < snap.index.nu  # strictly tighter

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="store_u"):
            SNAPParams(twojmax=4, rcut=3.0, store_u="sometimes")
        with pytest.raises(ValueError):
            SNAPParams(twojmax=4, rcut=3.0, store_u_budget_mb=0.0)
        with pytest.raises(ValueError, match="y_mode"):
            SNAPParams(twojmax=4, rcut=3.0, y_mode="csr")
        with pytest.raises(ValueError, match="chunk"):
            SNAPParams(twojmax=4, rcut=3.0, chunk="big")

    def test_cache_requires_chunk_alignment(self, rng, cluster):
        pos, nbr = cluster
        snap = _snap(rng, 4, chunk=8)
        cache = []
        utot = snap.compute_utot(pos.shape[0], nbr, cache=cache)
        _, y = snap._peratom_and_y(utot)
        with pytest.raises(ValueError, match="chunk-aligned"):
            snap._compute_dedr(nbr, y, cache=cache, start=3)


class TestSparseY:
    """The sparse-CG Y contraction (``y_mode="sparse"``) vs the dense GEMMs."""

    @pytest.mark.parametrize("twojmax", [4, 6, 8])
    @pytest.mark.parametrize("store_u", ["always", "never", "auto"])
    def test_matches_fused(self, rng, cluster, twojmax, store_u):
        pos, nbr = cluster
        n = pos.shape[0]
        beta = rng.normal(size=SNAPIndex(twojmax).ncoeff)
        out = {}
        for y_mode in ("dense", "sparse"):
            snap = SNAP(SNAPParams(twojmax=twojmax, rcut=3.0, chunk=32,
                                   store_u=store_u, y_mode=y_mode), beta=beta)
            out[y_mode] = snap.compute(n, nbr)
        a, b = out["dense"], out["sparse"]
        assert np.allclose(b.forces, a.forces, atol=1e-12, rtol=1e-12)
        assert b.energy == pytest.approx(a.energy, rel=1e-12, abs=1e-12)
        assert np.allclose(b.peratom, a.peratom, atol=1e-12, rtol=1e-12)
        assert np.allclose(b.virial, a.virial, atol=1e-11, rtol=1e-11)

    def test_variant_rung_registered(self, rng, cluster):
        from repro.core.variants import VARIANTS, run_variant

        names = list(VARIANTS)
        assert names.index("sparse_y") == names.index("fused") + 1
        pos, nbr = cluster
        snap = _snap(rng, 6)
        a = run_variant("fused", snap, pos.shape[0], nbr)
        b = run_variant("sparse_y", snap, pos.shape[0], nbr)
        assert np.allclose(b.forces, a.forces, atol=1e-12, rtol=1e-12)

    def test_sparse_descriptors_and_quadratic(self, rng, cluster):
        # the per-triple sparse z branch also feeds the descriptor and
        # quadratic paths (no adjoint shortcut there) - both must agree
        pos, nbr = cluster
        n = pos.shape[0]
        nb = SNAPIndex(4).nb
        beta = rng.normal(size=nb + 1)
        quad = 0.1 * rng.normal(size=(nb, nb))
        out = {}
        for y_mode in ("dense", "sparse"):
            snap = SNAP(SNAPParams(twojmax=4, rcut=3.0, chunk=32,
                                   y_mode=y_mode), beta=beta, quadratic=quad)
            out[y_mode] = (snap.compute_descriptors(n, nbr),
                           snap.compute(n, nbr))
        assert np.allclose(out["sparse"][0], out["dense"][0],
                           atol=1e-12, rtol=1e-12)
        assert np.allclose(out["sparse"][1].forces, out["dense"][1].forces,
                           atol=1e-12, rtol=1e-12)

    def test_sparse_empty_neighbor_list(self, rng):
        snap = _snap(rng, 4, y_mode="sparse")
        empty = NeighborBatch(i_idx=np.zeros(0, dtype=np.intp),
                              rij=np.zeros((0, 3)), r=np.zeros(0),
                              j_idx=np.zeros(0, dtype=np.intp))
        out = snap.compute(3, empty)
        assert np.all(out.forces == 0.0)
        assert np.isfinite(out.energy)

    def test_sparse_cg_structure(self):
        # entries enumerate exactly the nonzero CG products of the
        # half-plane tensor, sorted by output with segment boundaries
        from repro.core.cg import cg_sparse, cg_tensor

        for (j1, j2, j) in ((2, 2, 4), (4, 2, 2), (6, 4, 8)):
            sp = cg_sparse(j1, j2, j)
            h = cg_tensor(j1, j2, j)
            ncol = j // 2 + 1
            nnz_expected = np.count_nonzero(h) * \
                np.count_nonzero(h[:, :, :ncol])
            assert sp.nnz == nnz_expected
            assert sp.dense_size == (j1 + 1) * (j2 + 1) * (j + 1) * ncol
            assert sp.shape == (j + 1, ncol)
            # reconstruct one output element by brute force
            out_full = np.repeat(sp.out_index,
                                 np.diff(np.r_[sp.seg_starts, sp.nnz]))
            target = sp.out_index[0]
            ma, mb = divmod(int(target), ncol)
            acc = 0.0
            for k in np.nonzero(out_full == target)[0]:
                ma1, mb1 = divmod(int(sp.idx1[k]), j1 + 1)
                ma2, mb2 = divmod(int(sp.idx2[k]), j2 + 1)
                assert sp.value[k] == pytest.approx(
                    h[ma1, ma2, ma] * h[mb1, mb2, mb])
                acc += sp.value[k]
            assert np.isfinite(acc)
            # sorted by output index, deterministic reduction order
            assert np.all(np.diff(sp.out_index) > 0)
            assert not sp.value.flags.writeable

    def test_yi_flop_model(self):
        from repro.core.flops import yi_contraction_model

        m = yi_contraction_model(8)
        assert 0.0 < m["cg_density"] < 1.0
        assert m["sparse_flops"] < m["dense_flops"]
        assert m["theoretical_speedup"] == pytest.approx(
            1.0 / m["cg_density"])
        # selection rules bite harder as J grows
        assert yi_contraction_model(8)["cg_density"] < \
            yi_contraction_model(2)["cg_density"]


class TestPairOverrides:
    def test_pair_weight_and_rcut(self, rng, cluster):
        pos, nbr = cluster
        snap = _snap(rng, 4, store_u="always")
        wrng = np.random.default_rng(7)
        nbr2 = NeighborBatch(
            i_idx=nbr.i_idx, rij=nbr.rij, r=nbr.r, j_idx=nbr.j_idx,
            pair_weight=wrng.uniform(0.5, 1.5, nbr.npairs),
            pair_rcut=wrng.uniform(2.0, 2.9, nbr.npairs))
        out = snap.compute(pos.shape[0], nbr2)
        fd = _fd_forces_fixed_topology(snap, pos, nbr2)
        assert np.allclose(out.forces, fd, atol=1e-5)
        # stored-U and recompute paths agree bitwise with overrides too
        out2 = SNAP(replace(snap.params, store_u="never"),
                    beta=snap.beta).compute(pos.shape[0], nbr2)
        assert np.array_equal(out.forces, out2.forces)

    def test_pair_at_exact_cutoff(self, rng):
        # regression: r == pair_rcut must give a finite, exactly-zero
        # contribution (the Cayley-Klein map diverges at rcut; the clamp
        # plus fc(rcut) = 0 must keep the pair inert)
        rij = np.array([[1.2, 0.3, 0.8], [0.0, 0.0, 2.5]])
        r = np.linalg.norm(rij, axis=1)
        pr = np.array([3.0, r[1]])  # second pair sits exactly at its rcut
        nbr = NeighborBatch(i_idx=np.zeros(2, dtype=np.intp), rij=rij, r=r,
                            j_idx=np.array([1, 2]), pair_rcut=pr)
        only = NeighborBatch(i_idx=np.zeros(1, dtype=np.intp), rij=rij[:1],
                             r=r[:1], j_idx=np.array([1]),
                             pair_rcut=np.array([3.0]))
        snap = _snap(np.random.default_rng(3), 4)
        out = snap.compute(3, nbr)
        ref = snap.compute(3, only)
        assert np.all(np.isfinite(out.forces))
        assert np.allclose(out.forces[:2], ref.forces[:2], atol=1e-12)
        assert np.allclose(out.forces[2], 0.0, atol=1e-12)


def _fd_forces_fixed_topology(snap, pos, nbr, h=1e-6):
    """Central-difference forces at fixed pair topology and overrides.

    The analytic forces of ``snap.compute`` differentiate the energy at
    the *given* pair list, so the finite difference must keep the same
    pairs (with their per-pair weight/rcut) and only refresh geometry.
    """
    natoms = pos.shape[0]

    def energy(p):
        rij = p[nbr.j_idx] - p[nbr.i_idx]
        batch = NeighborBatch(i_idx=nbr.i_idx, rij=rij,
                              r=np.linalg.norm(rij, axis=1), j_idx=nbr.j_idx,
                              pair_weight=nbr.pair_weight,
                              pair_rcut=nbr.pair_rcut)
        return snap.compute(natoms, batch).energy

    out = np.zeros((natoms, 3))
    for a in range(natoms):
        for c in range(3):
            pp = pos.copy()
            pp[a, c] += h
            ep = energy(pp)
            pp[a, c] -= 2 * h
            em = energy(pp)
            out[a, c] = -(ep - em) / (2 * h)
    return out


class TestEmptyAndEdgeCases:
    def test_empty_neighbor_list(self, rng):
        for store_u in ("always", "never"):
            snap = _snap(rng, 4, store_u=store_u)
            empty = NeighborBatch(i_idx=np.zeros(0, dtype=np.intp),
                                  rij=np.zeros((0, 3)), r=np.zeros(0),
                                  j_idx=np.zeros(0, dtype=np.intp))
            out = snap.compute(3, empty)
            assert np.all(out.forces == 0.0)
            assert np.all(out.virial == 0.0)
            assert np.isfinite(out.energy)

    def test_empty_sharded(self, rng):
        snap = _snap(rng, 4)
        empty = NeighborBatch(i_idx=np.zeros(0, dtype=np.intp),
                              rij=np.zeros((0, 3)), r=np.zeros(0),
                              j_idx=np.zeros(0, dtype=np.intp))
        with ShardedSNAP(snap, nworkers=3) as ev:
            out = ev.compute(3, empty)
        assert np.all(out.forces == 0.0)

    def test_j_idx_shape_validated(self):
        with pytest.raises(ValueError, match="j_idx"):
            NeighborBatch(i_idx=np.zeros(3, dtype=np.intp),
                          rij=np.zeros((3, 3)), r=np.ones(3),
                          j_idx=np.zeros(2, dtype=np.intp))


class TestSharding:
    def test_shard_bounds(self):
        assert shard_bounds(10, 3, align=4) == [(0, 4), (4, 8), (8, 10)]
        assert shard_bounds(0, 4) == [(0, 0)]
        assert shard_bounds(7, 100, align=2) == [(0, 2), (2, 4), (4, 6), (6, 7)]
        b = shard_bounds(1000, 4, align=32)
        assert b[0][0] == 0 and b[-1][1] == 1000
        assert all(lo % 32 == 0 for lo, _ in b)
        with pytest.raises(ValueError):
            shard_bounds(10, 0)

    def test_nworkers_bitwise_determinism(self, rng, cluster):
        pos, nbr = cluster
        snap = _snap(rng, 6, chunk=8)
        ref = snap.compute(pos.shape[0], nbr)
        for nw in (2, 4):
            with ShardedSNAP(snap, nworkers=nw) as ev:
                out = ev.compute(pos.shape[0], nbr)
            assert np.array_equal(out.forces, ref.forces)
            assert out.energy == ref.energy
            assert np.array_equal(out.virial, ref.virial)
            assert np.array_equal(out.peratom, ref.peratom)
            assert set(ev.last_timings) == set(snap.last_timings)

    def test_process_backend_bitwise(self, rng, cluster):
        pos, nbr = cluster
        snap = _snap(rng, 4, chunk=16)
        ref = snap.compute(pos.shape[0], nbr)
        with ShardedSNAP(snap, nworkers=2, backend="process") as ev:
            out = ev.compute(pos.shape[0], nbr)
        assert np.array_equal(out.forces, ref.forces)

    def test_sharded_potential_passthrough(self, rng):
        from repro.potentials import SNAPPotential

        class Dummy:
            cutoff = 3.0

        d = Dummy()
        assert sharded_potential(d, 4) is d  # not SNAP-backed
        params = SNAPParams(twojmax=4, rcut=3.0, chunk=32)
        pot = SNAPPotential(params, beta=rng.normal(size=SNAPIndex(4).ncoeff))
        assert sharded_potential(pot, 1) is pot  # serial stays unwrapped
        with pytest.raises(ValueError, match="positive"):
            sharded_potential(pot, -2)
        wrapped = sharded_potential(pot, 4)
        assert wrapped is not pot
        assert wrapped.cutoff == pot.cutoff
        wrapped.close()

    def test_simulation_nworkers_matches_serial(self, rng):
        from repro.md import Simulation
        from repro.potentials import SNAPPotential
        from repro.structures import lattice_system

        params = SNAPParams(twojmax=4, rcut=2.2, chunk=64)
        beta = np.random.default_rng(9).normal(size=SNAPIndex(4).ncoeff)

        def build(nw):
            s = lattice_system("fcc", a=2.4, reps=(2, 2, 2), mass=12.0)
            s.seed_velocities(300.0, rng=np.random.default_rng(5))
            return Simulation(s, SNAPPotential(params, beta=beta), dt=1e-3,
                              nworkers=nw)

        runs = {}
        for nw in (1, 4):
            sim = build(nw)
            sim.run(3)
            runs[nw] = (sim.system.positions.copy(),
                        sim.last_result.forces.copy())
        assert np.array_equal(runs[1][0], runs[4][0])
        assert np.array_equal(runs[1][1], runs[4][1])

    def test_invalid_args(self, rng):
        snap = _snap(rng, 4)
        with pytest.raises(ValueError):
            ShardedSNAP(snap, nworkers=0)
        with pytest.raises(ValueError):
            ShardedSNAP(snap, backend="gpu")


class TestBenchRecord:
    def test_round_trip(self, tmp_path):
        import json

        from repro.core.benchrecord import make_snap_record, write_snap_record

        rec = make_snap_record(
            problem={"twojmax": 8, "natoms": 100},
            seconds={"legacy": 2.0, "fused": 0.5},
            natoms=100, reference="legacy",
            stage_timings={"fused": {"compute_ui": 0.1}})
        assert rec["variants"]["fused"]["speedup_vs_legacy"] == pytest.approx(4.0)
        assert rec["variants"]["fused"]["atoms_per_s"] == pytest.approx(200.0)
        assert rec["variants"]["fused"]["stages"] == {"compute_ui": 0.1}
        assert rec["host"]["numpy"] == np.__version__
        path = write_snap_record(tmp_path / "BENCH_snap.json", rec)
        assert json.loads(path.read_text()) == rec

    def test_default_reference_is_slowest(self):
        from repro.core.benchrecord import make_snap_record

        rec = make_snap_record(problem={}, seconds={"a": 1.0, "b": 3.0},
                               natoms=10)
        assert rec["reference"] == "b"
        with pytest.raises(ValueError):
            make_snap_record(problem={}, seconds={}, natoms=10)
        with pytest.raises(ValueError):
            make_snap_record(problem={}, seconds={"a": 1.0}, natoms=10,
                             reference="nope")
