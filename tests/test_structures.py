"""Tests for structure builders."""

import numpy as np
import pytest

from repro.analysis import coordination_numbers
from repro.md import build_pairs
from repro.structures import (bc8_cell, diamond_cell, lattice_system,
                              melt_quench, random_packed, replicate)


class TestLattices:
    @pytest.mark.parametrize("kind,per_cell", [("sc", 1), ("bcc", 2),
                                               ("fcc", 4), ("diamond", 8),
                                               ("bc8", 16)])
    def test_atom_counts(self, kind, per_cell):
        s = lattice_system(kind, a=3.0, reps=(2, 3, 1))
        assert s.natoms == per_cell * 6

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown lattice"):
            lattice_system("hcp", a=3.0)

    def test_bad_reps(self):
        with pytest.raises(ValueError):
            lattice_system("sc", a=3.0, reps=(0, 1, 1))

    def test_diamond_first_neighbor(self):
        a = 3.567
        s = lattice_system("diamond", a=a, reps=(2, 2, 2))
        nbr = build_pairs(s.positions, s.box, 1.7)
        assert np.allclose(nbr.r, a * np.sqrt(3) / 4)

    def test_diamond_coordination(self):
        s = lattice_system("diamond", a=3.567, reps=(2, 2, 2))
        assert np.all(coordination_numbers(s.positions, s.box, 1.7) == 4)

    def test_bc8_coordination_fourfold(self):
        # BC8 is fourfold coordinated like diamond (distorted tetrahedra)
        a = 2.52  # near carbon-BC8 scale
        s = lattice_system("bc8", a=a, reps=(2, 2, 2))
        nn = coordination_numbers(s.positions, s.box, 0.45 * a)
        assert np.all(nn == 4)

    def test_bc8_cell_in_unit_cube(self):
        f = bc8_cell()
        assert np.all(f >= 0) and np.all(f < 1)
        assert f.shape == (16, 3)

    def test_diamond_cell_unique(self):
        f = diamond_cell()
        assert len(np.unique(np.round(f, 9), axis=0)) == 8

    def test_all_atoms_distinct(self):
        for kind in ("sc", "bcc", "fcc", "diamond", "bc8"):
            s = lattice_system(kind, a=3.0, reps=(2, 2, 2))
            nbr = build_pairs(s.positions, s.box, 0.5)
            assert nbr.npairs == 0, kind  # no overlapping atoms


class TestReplicate:
    def test_counts_and_box(self):
        s = lattice_system("fcc", a=2.0, reps=(1, 1, 1))
        r = replicate(s, 2, 3, 4)
        assert r.natoms == s.natoms * 24
        assert np.allclose(r.box.lengths, s.box.lengths * [2, 3, 4])

    def test_density_preserved(self):
        s = lattice_system("diamond", a=3.567, reps=(1, 1, 1))
        r = replicate(s, 3, 3, 3)
        assert r.density() == pytest.approx(s.density())

    def test_velocities_copied(self, rng):
        s = lattice_system("sc", a=2.0, reps=(2, 2, 2))
        s.seed_velocities(100.0, rng=rng)
        r = replicate(s, 2, 1, 1)
        assert np.allclose(r.velocities[:s.natoms], s.velocities)
        assert np.allclose(r.velocities[s.natoms:], s.velocities)

    def test_bad_reps(self):
        s = lattice_system("sc", a=2.0)
        with pytest.raises(ValueError):
            replicate(s, 0, 1, 1)


class TestRandomPacked:
    def test_density(self):
        s = random_packed(100, density=0.1, seed=1)
        assert s.density() == pytest.approx(0.1)

    def test_min_distance_respected(self):
        s = random_packed(150, density=0.1, min_dist=1.2, seed=2)
        nbr = build_pairs(s.positions, s.box, 1.2)
        assert nbr.npairs == 0

    def test_reproducible(self):
        a = random_packed(50, density=0.05, seed=3)
        b = random_packed(50, density=0.05, seed=3)
        assert np.allclose(a.positions, b.positions)

    def test_impossible_density_raises(self):
        with pytest.raises(RuntimeError):
            random_packed(64, density=2.0, min_dist=2.0, max_tries=10)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_packed(0)
        with pytest.raises(ValueError):
            random_packed(5, density=-1.0)


class TestMeltQuench:
    def test_produces_disordered_sample(self):
        from repro.potentials import LennardJones

        pot = LennardJones(epsilon=0.1, sigma=1.2, cutoff=3.0)
        s = melt_quench(pot, natoms=64, density=0.2, melt_steps=30,
                        quench_steps=30, dt=1e-3, seed=4)
        assert s.natoms == 64
        # positions moved off the initial random packing but stay in box
        assert np.all(s.positions >= 0) and np.all(s.positions <= s.box.lengths)
