"""Tests for the radial switching function."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.switching import sfac_dsfac, switching, switching_derivative


class TestSwitching:
    def test_limits(self):
        assert switching(np.array([0.0]), 4.0)[0] == 1.0
        assert switching(np.array([4.0]), 4.0)[0] == 0.0
        assert switching(np.array([5.0]), 4.0)[0] == 0.0

    def test_midpoint(self):
        assert switching(np.array([2.0]), 4.0)[0] == pytest.approx(0.5)

    def test_rmin0_plateau(self):
        r = np.array([0.2, 0.5, 1.0])
        fc = switching(r, 4.0, rmin0=1.0)
        assert np.all(fc == 1.0)

    def test_monotone_decreasing(self):
        r = np.linspace(0.0, 4.0, 100)
        fc = switching(r, 4.0)
        assert np.all(np.diff(fc) <= 1e-15)

    def test_invalid_cutoff(self):
        with pytest.raises(ValueError):
            switching(np.array([1.0]), 1.0, rmin0=2.0)


class TestDerivative:
    @settings(deadline=None, max_examples=25)
    @given(r=st.floats(0.05, 3.95), rmin0=st.floats(0.0, 0.5))
    def test_matches_finite_difference(self, r, rmin0):
        if r <= rmin0 + 1e-3:
            return
        h = 1e-7
        fd = (switching(np.array([r + h]), 4.0, rmin0)
              - switching(np.array([r - h]), 4.0, rmin0)) / (2 * h)
        an = switching_derivative(np.array([r]), 4.0, rmin0)
        assert an[0] == pytest.approx(fd[0], abs=1e-6)

    def test_zero_outside(self):
        d = switching_derivative(np.array([4.5, 0.0]), 4.0, rmin0=0.5)
        assert np.all(d == 0.0)


class TestSfac:
    def test_weighting(self):
        r = np.array([1.0, 2.0])
        s1, d1 = sfac_dsfac(r, 4.0, wj=1.0)
        s2, d2 = sfac_dsfac(r, 4.0, wj=2.5)
        assert np.allclose(s2, 2.5 * s1)
        assert np.allclose(d2, 2.5 * d1)

    def test_no_switch(self):
        r = np.array([1.0, 3.9, 4.1])
        s, d = sfac_dsfac(r, 4.0, switch=False)
        assert np.allclose(s, [1.0, 1.0, 0.0])
        assert np.all(d == 0.0)
