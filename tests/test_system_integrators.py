"""Tests for ParticleSystem and the integrators/thermostats."""

import numpy as np
import pytest

from repro.constants import MVV2E
from repro.md import (BerendsenThermostat, Box, LangevinThermostat,
                      ParticleSystem, Simulation, VelocityVerlet)
from repro.potentials import LennardJones
from repro.structures import lattice_system


class TestParticleSystem:
    def test_defaults(self):
        s = ParticleSystem(positions=np.zeros((3, 3)), box=Box.cubic(5.0))
        assert s.natoms == 3
        assert np.all(s.velocities == 0)
        assert np.allclose(s.masses, 12.011)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ParticleSystem(positions=np.zeros((3, 2)), box=Box.cubic(5.0))
        with pytest.raises(ValueError):
            ParticleSystem(positions=np.zeros((3, 3)), box=Box.cubic(5.0),
                           masses=np.ones(2))
        with pytest.raises(ValueError):
            ParticleSystem(positions=np.zeros((3, 3)), box=Box.cubic(5.0),
                           velocities=np.zeros((2, 3)))

    def test_kinetic_energy_formula(self):
        s = ParticleSystem(positions=np.zeros((1, 3)), box=Box.cubic(5.0),
                           masses=10.0, velocities=np.array([[2.0, 0.0, 0.0]]))
        assert s.kinetic_energy() == pytest.approx(0.5 * 10.0 * 4.0 * MVV2E)

    def test_seed_velocities_temperature(self, rng):
        s = ParticleSystem(positions=rng.uniform(0, 10, (500, 3)),
                           box=Box.cubic(10.0))
        s.seed_velocities(300.0, rng=rng)
        assert s.temperature() == pytest.approx(300.0, rel=1e-9)

    def test_seed_velocities_zero_momentum(self, rng):
        s = ParticleSystem(positions=rng.uniform(0, 10, (100, 3)),
                           box=Box.cubic(10.0))
        s.seed_velocities(500.0, rng=rng)
        p = (s.masses[:, None] * s.velocities).sum(axis=0)
        assert np.allclose(p, 0.0, atol=1e-9)

    def test_copy_independent(self, rng):
        s = ParticleSystem(positions=rng.uniform(0, 10, (10, 3)),
                           box=Box.cubic(10.0))
        c = s.copy()
        c.positions[0] += 1.0
        assert not np.allclose(s.positions[0], c.positions[0])

    def test_density(self):
        s = lattice_system("fcc", a=2.0, reps=(3, 3, 3))
        assert s.density() == pytest.approx(4 / 8.0)


class TestVelocityVerlet:
    def test_dt_validation(self):
        with pytest.raises(ValueError):
            VelocityVerlet(dt=0.0)

    def test_free_particle_drift(self):
        s = ParticleSystem(positions=np.zeros((1, 3)), box=Box.cubic(100.0),
                           masses=1.0, velocities=np.array([[1.0, 0.0, 0.0]]))
        vv = VelocityVerlet(dt=0.1)
        f = np.zeros((1, 3))
        for _ in range(10):
            vv.first_half(s, f)
            vv.second_half(s, f)
        assert s.positions[0, 0] == pytest.approx(1.0)

    def test_energy_conservation_lj(self, rng):
        s = lattice_system("fcc", a=1.64, reps=(3, 3, 3), mass=39.95)
        s.seed_velocities(20.0, rng=rng)
        pot = LennardJones(epsilon=0.0104, sigma=1.0, cutoff=2.5)
        sim = Simulation(s, pot, dt=2e-3)
        e0 = sim.potential_energy + s.kinetic_energy()
        sim.run(150)
        e1 = sim.potential_energy + s.kinetic_energy()
        assert abs(e1 - e0) / max(abs(e0), 1e-10) < 1e-4

    def test_time_reversibility(self, rng):
        s = lattice_system("fcc", a=1.7, reps=(2, 2, 2), mass=39.95)
        s.seed_velocities(10.0, rng=rng)
        pot = LennardJones(epsilon=0.0104, sigma=1.0, cutoff=2.5)
        start = s.positions.copy()
        sim = Simulation(s, pot, dt=1e-3, skin=1.0)
        sim.run(50)
        s.velocities *= -1.0
        sim.run(50)
        assert np.allclose(s.positions, start, atol=1e-7)


class TestLangevin:
    def test_equilibrates_to_target(self, rng):
        s = lattice_system("fcc", a=1.7, reps=(3, 3, 3), mass=39.95)
        pot = LennardJones(epsilon=0.0104, sigma=1.0, cutoff=2.5)
        thermo = LangevinThermostat(temp=50.0, damp=0.05, seed=4)
        sim = Simulation(s, pot, dt=2e-3, thermostat=thermo)
        sim.run(300)
        temps = []
        for _ in range(10):
            sim.run(20)
            temps.append(s.temperature())
        assert np.mean(temps) == pytest.approx(50.0, rel=0.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            LangevinThermostat(temp=-1.0)
        with pytest.raises(ValueError):
            LangevinThermostat(temp=100.0, damp=0.0)

    def test_zero_temperature_damps(self):
        s = ParticleSystem(positions=np.zeros((1, 3)), box=Box.cubic(100.0),
                           masses=1.0, velocities=np.array([[5.0, 0.0, 0.0]]))
        th = LangevinThermostat(temp=0.0, damp=0.01, seed=1)
        f = np.zeros((1, 3))
        th.add_forces(s, f, dt=1e-3)
        # pure drag, anti-parallel to velocity
        assert f[0, 0] < 0 and f[0, 1] == 0


class TestBerendsen:
    def test_rescales_toward_target(self, rng):
        s = ParticleSystem(positions=rng.uniform(0, 10, (200, 3)),
                           box=Box.cubic(10.0))
        s.seed_velocities(100.0, rng=rng)
        th = BerendsenThermostat(temp=400.0, tau=0.01)
        t0 = s.temperature()
        th.apply(s, dt=0.005)
        t1 = s.temperature()
        assert t0 < t1 < 400.0

    def test_noop_at_zero_temperature(self):
        s = ParticleSystem(positions=np.zeros((2, 3)), box=Box.cubic(5.0))
        BerendsenThermostat(temp=300.0).apply(s, dt=1e-3)
        assert np.all(s.velocities == 0)
