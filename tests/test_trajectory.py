"""Streaming trajectory format: round-trip, crash recovery, async writer.

The format's headline guarantee is crash safety: a frame is either
completely on disk (header + payload with a matching CRC) or it does
not exist.  The torn-tail sweep truncates a valid file at *every*
possible byte length and demands the reader recover exactly the frames
whose final byte survived - no exception, no partial frame.
"""

import threading

import numpy as np
import pytest

from repro.md import (AsyncTrajectoryWriter, Frame, TrajectoryFile,
                      TrajectoryReader)
from repro.md.trajectory import (FRAME_HEADER, HEADER, encode_frame,
                                 payload_nbytes, scan_trajectory)
from repro.structures import lattice_system

NATOMS = 32


def _system(seed=3):
    s = lattice_system("fcc", a=2.5, reps=(2, 2, 2))
    s.seed_velocities(80.0, rng=np.random.default_rng(seed))
    return s


def _frames(n, velocities=True, seed=3):
    s = _system(seed)
    rng = np.random.default_rng(seed + 1)
    out = []
    for i in range(n):
        s.positions = s.positions + rng.normal(scale=0.01,
                                               size=s.positions.shape)
        f = Frame.from_state(10 * i, s, None, velocities=velocities)
        f.potential_energy = float(i) - 1.5
        f.total_energy = f.potential_energy + f.kinetic_energy
        out.append(f)
    return out


def _write(path, frames, natoms=NATOMS):
    with TrajectoryFile(path, natoms=natoms) as tf:
        for f in frames:
            tf.write_frame(f)
    return path


def assert_frames_equal(a: Frame, b: Frame):
    assert a.step == b.step
    assert np.array_equal(a.box_lengths, b.box_lengths)
    assert a.periodic == b.periodic
    for attr in ("temperature", "potential_energy", "kinetic_energy",
                 "total_energy"):
        assert getattr(a, attr) == getattr(b, attr)
    for attr in ("positions", "velocities"):
        av, bv = getattr(a, attr), getattr(b, attr)
        assert (av is None) == (bv is None)
        if av is not None:
            assert np.array_equal(av, bv)


# ======================================================================
# format round-trip
# ======================================================================
class TestRoundTrip:
    def test_frames_round_trip_bitwise(self, tmp_path):
        frames = _frames(4)
        path = _write(tmp_path / "t.trj", frames)
        with TrajectoryReader(path) as r:
            assert len(r) == 4
            assert not r.truncated
            for want, got in zip(frames, r):
                assert_frames_equal(want, got)

    def test_positions_only_and_negative_index(self, tmp_path):
        frames = _frames(3, velocities=False)
        path = _write(tmp_path / "t.trj", frames)
        with TrajectoryReader(path) as r:
            last = r.read(-1)
            assert last.velocities is None
            assert_frames_equal(frames[-1], last)
            with pytest.raises(IndexError):
                r.read(3)

    def test_steps_header_only_walk(self, tmp_path):
        path = _write(tmp_path / "t.trj", _frames(5))
        with TrajectoryReader(path) as r:
            assert np.array_equal(r.steps(), [0, 10, 20, 30, 40])

    def test_natoms_mismatch_rejected(self, tmp_path):
        path = _write(tmp_path / "t.trj", _frames(1))
        with TrajectoryFile(path, mode="a") as tf:
            big = _frames(1)[0]
            big.positions = np.zeros((NATOMS + 1, 3))
            with pytest.raises(ValueError):
                tf.write_frame(big)

    def test_not_a_trajectory_rejected(self, tmp_path):
        junk = tmp_path / "junk.trj"
        junk.write_bytes(b"definitely not a trajectory header")
        with pytest.raises(ValueError):
            scan_trajectory(junk)
        junk.write_bytes(b"\x01\x02")
        with pytest.raises(ValueError):
            scan_trajectory(junk)


# ======================================================================
# crash recovery
# ======================================================================
class TestCrashRecovery:
    def test_torn_tail_sweep_every_byte_offset(self, tmp_path):
        """Truncate at every length: reader recovers complete frames."""
        frames = _frames(3)
        path = _write(tmp_path / "t.trj", frames)
        blob = path.read_bytes()
        frame_nbytes = FRAME_HEADER.size + payload_nbytes(3, NATOMS)
        torn = tmp_path / "torn.trj"
        for cut in range(HEADER.size, len(blob)):
            torn.write_bytes(blob[:cut])
            scan = scan_trajectory(torn)
            whole = (cut - HEADER.size) // frame_nbytes
            assert scan.nframes == whole, f"cut at byte {cut}"
            assert scan.truncated == (cut > HEADER.size + whole * frame_nbytes)

    def test_append_mode_truncates_torn_tail(self, tmp_path):
        frames = _frames(3)
        path = _write(tmp_path / "t.trj", frames)
        blob = path.read_bytes()
        path.write_bytes(blob[:-7])  # tear the last frame
        with TrajectoryFile(path, mode="a") as tf:
            assert tf.recovered_truncation
            assert tf.checkpoint_state()[1] == 2
            tf.write_frame(frames[2])
        with TrajectoryReader(path) as r:
            assert len(r) == 3
            assert not r.truncated
            assert_frames_equal(frames[2], r.read(2))

    def test_crc_corruption_hides_frame(self, tmp_path):
        path = _write(tmp_path / "t.trj", _frames(2))
        blob = bytearray(path.read_bytes())
        blob[-5] ^= 0xFF  # flip a payload byte of the last frame
        path.write_bytes(bytes(blob))
        scan = scan_trajectory(path)
        assert scan.nframes == 1
        assert scan.truncated

    def test_truncate_to_rolls_back_frames(self, tmp_path):
        frames = _frames(4)
        with TrajectoryFile(tmp_path / "t.trj", natoms=NATOMS) as tf:
            for f in frames[:2]:
                tf.write_frame(f)
            offset, nframes = tf.checkpoint_state()
            for f in frames[2:]:
                tf.write_frame(f)
            tf.truncate_to(offset, nframes)
            tf.write_frame(frames[2])
        with TrajectoryReader(tmp_path / "t.trj") as r:
            assert np.array_equal(r.steps(), [0, 10, 20])


# ======================================================================
# async writer
# ======================================================================
class TestAsyncWriter:
    def test_matches_sync_writer_bitwise(self, tmp_path):
        frames = _frames(6)
        sync = _write(tmp_path / "sync.trj", frames)
        with AsyncTrajectoryWriter(tmp_path / "async.trj",
                                   natoms=NATOMS) as w:
            for f in frames:
                w.write_frame(f)
        assert (tmp_path / "async.trj").read_bytes() == sync.read_bytes()

    def test_flush_makes_frames_visible(self, tmp_path):
        frames = _frames(2)
        w = AsyncTrajectoryWriter(tmp_path / "t.trj", natoms=NATOMS)
        try:
            for f in frames:
                w.write_frame(f)
            w.flush()
            assert w.nframes == 2
            assert scan_trajectory(tmp_path / "t.trj").nframes == 2
        finally:
            w.close()

    def test_append_after_crash(self, tmp_path):
        frames = _frames(3)
        path = _write(tmp_path / "t.trj", frames[:2])
        blob = path.read_bytes()
        path.write_bytes(blob + b"\x00garbage")
        with AsyncTrajectoryWriter(path, natoms=NATOMS, mode="a") as w:
            assert w.recovered_truncation
            w.write_frame(frames[2])
        with TrajectoryReader(path) as r:
            assert len(r) == 3

    def test_ledger_counts_bytes_and_frames(self, tmp_path):
        frames = _frames(3)
        nbytes = len(encode_frame(frames[0], NATOMS))
        with AsyncTrajectoryWriter(tmp_path / "t.trj", natoms=NATOMS) as w:
            for f in frames:
                w.write_frame(f)
            w.flush()
            assert w.ledger.frames == 3
            assert w.ledger.nbytes == 3 * nbytes
            assert w.ledger.as_dict()["frames"] == 3

    def test_write_after_close_raises(self, tmp_path):
        w = AsyncTrajectoryWriter(tmp_path / "t.trj", natoms=NATOMS)
        w.close()
        w.close()  # idempotent
        with pytest.raises(RuntimeError):
            w.write_frame(_frames(1)[0])

    def test_drain_error_surfaces_on_caller(self, tmp_path):
        frames = _frames(2)
        w = AsyncTrajectoryWriter(tmp_path / "t.trj", natoms=NATOMS)
        w.write_frame(frames[0])
        w.flush()
        w._file.close()  # simulate the disk going away mid-run
        w.write_frame(frames[1])
        with pytest.raises(RuntimeError):
            w.flush()
            w.write_frame(frames[1])
        with pytest.raises(RuntimeError):
            w.close()

    def test_backpressure_blocks_then_drains(self, tmp_path):
        frames = _frames(1)
        done = []
        with AsyncTrajectoryWriter(tmp_path / "t.trj", natoms=NATOMS,
                                   max_pending=2) as w:
            def burst():
                for _ in range(50):
                    w.write_frame(frames[0])
                done.append(True)
            t = threading.Thread(target=burst)
            t.start()
            t.join(30.0)
            assert done, "writer deadlocked under backpressure"
            w.flush()
            assert w.nframes == 50
