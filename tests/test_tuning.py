"""Self-tuning kernel policy: DB round-trip, corruption, resolution, CLI."""

import json
import warnings

import numpy as np
import pytest

from repro.core import SNAP, SNAPParams
from repro.core.indexing import SNAPIndex
from repro.tuning import (SCHEMA_VERSION, TunedConfig, TuningDB,
                          default_db_path, resolve_params, shape_key, tune)

GOOD_ENTRY = {"chunk": 2048, "store_u": "never", "y_mode": "sparse",
              "shard_workers": 1, "seconds": 0.01}


class TestShapeKey:
    def test_buckets(self):
        # exact twojmax/nprocs, pow2-bucketed density and atom count
        assert shape_key(8, 2000, 52000, 1) == "v1:2j8:nbr32:na2048:np1"
        assert shape_key(8, 2048, 2048 * 26, 1) == \
            shape_key(8, 1025, 1025 * 26, 1)
        assert shape_key(8, 100, 2600) != shape_key(6, 100, 2600)
        assert shape_key(8, 100, 2600, 1) != shape_key(8, 100, 2600, 4)
        assert shape_key(4, 0, 0) == "v1:2j4:nbr1:na1:np1"

    def test_density_buckets_separate(self):
        dense = shape_key(8, 1000, 1000 * 60)
        sparse = shape_key(8, 1000, 1000 * 10)
        assert dense != sparse


class TestResolveParams:
    def _params(self, **kw):
        return SNAPParams(twojmax=4, rcut=3.0, **kw)

    def test_defaults_on_miss(self, tmp_path):
        db = TuningDB(tmp_path / "none.json")
        p = self._params(chunk="auto", y_mode="auto")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a missing file is not a defect
            out, dec = resolve_params(p, natoms=10, npairs=100, db=db)
        assert out.chunk == 4096 and out.y_mode == "dense"
        assert out.store_u == "auto"  # untouched without a DB entry
        assert dec.source == "default" and dec.seconds is None
        assert isinstance(dec, TunedConfig)

    def test_db_entry_wins_for_auto_fields(self, tmp_path):
        db = TuningDB(tmp_path / "t.json")
        key = shape_key(4, 10, 100, 1)
        db.record(key, GOOD_ENTRY)
        p = self._params(chunk="auto", y_mode="auto", store_u="auto")
        out, dec = resolve_params(p, natoms=10, npairs=100, db=db)
        assert (out.chunk, out.y_mode, out.store_u) == (2048, "sparse", "never")
        assert dec.source == "db" and dec.key == key
        assert dec.seconds == pytest.approx(0.01)
        assert "db:" in dec.describe() and "chunk=2048" in dec.describe()

    def test_explicit_fields_never_overridden(self, tmp_path):
        db = TuningDB(tmp_path / "t.json")
        db.record(shape_key(4, 10, 100, 1), GOOD_ENTRY)
        p = self._params(chunk=512, y_mode="dense", store_u="always")
        out, dec = resolve_params(p, natoms=10, npairs=100, db=db)
        assert (out.chunk, out.y_mode, out.store_u) == (512, "dense", "always")
        assert out is p  # nothing to replace

    def test_malformed_entry_degrades_with_warning(self, tmp_path):
        db = TuningDB(tmp_path / "t.json")
        db.record(shape_key(4, 10, 100, 1), {"chunk": "huge", "y_mode": "??"})
        p = self._params(chunk="auto", y_mode="auto")
        with pytest.warns(RuntimeWarning, match="malformed"):
            out, dec = resolve_params(p, natoms=10, npairs=100, db=db)
        assert out.chunk == 4096 and dec.source == "default"


class TestTuningDB:
    def test_round_trip_across_instances(self, tmp_path):
        path = tmp_path / "db.json"
        TuningDB(path).record("k1", GOOD_ENTRY)
        fresh = TuningDB(path)
        assert fresh.lookup("k1") == GOOD_ENTRY
        assert fresh.lookup("k2") is None

    def test_atomic_write_schema_envelope(self, tmp_path):
        path = tmp_path / "db.json"
        db = TuningDB(path)
        db.record("k1", GOOD_ENTRY)
        db.record("k2", dict(GOOD_ENTRY, chunk=8192))
        raw = json.loads(path.read_text())
        assert raw["schema"] == SCHEMA_VERSION
        assert raw["host"]["machine"]  # fingerprint stamped
        assert set(raw["entries"]) == {"k1", "k2"}
        # no stray temp files once the replace landed
        assert [p.name for p in tmp_path.iterdir()] == ["db.json"]

    @pytest.mark.parametrize("content", [
        "{not json", "", '{"schema": 1, "entries": ',  # torn/corrupt
        '[1, 2, 3]',                                    # wrong shape
        '{"schema": 99, "entries": {}}',                # future schema
        '{"schema": 1, "entries": 7}',                  # bad entry table
    ])
    def test_corrupt_file_degrades_with_warning(self, tmp_path, content):
        path = tmp_path / "db.json"
        path.write_text(content)
        with pytest.warns(RuntimeWarning):
            assert TuningDB(path).lookup("k") is None

    def test_missing_file_is_silent(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert TuningDB(tmp_path / "absent.json").entries() == {}

    def test_foreign_host_entries_ignored(self, tmp_path):
        path = tmp_path / "db.json"
        TuningDB(path).record("k1", GOOD_ENTRY)
        raw = json.loads(path.read_text())
        raw["host"]["machine"] = "pdp11"
        path.write_text(json.dumps(raw))
        with pytest.warns(RuntimeWarning, match="different hardware"):
            assert TuningDB(path).lookup("k1") is None

    def test_default_path_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNING_DB", str(tmp_path / "env.json"))
        assert default_db_path() == tmp_path / "env.json"
        assert TuningDB().path == tmp_path / "env.json"
        monkeypatch.delenv("REPRO_TUNING_DB")
        assert default_db_path().name == "tuning.json"


class TestTune:
    def test_measures_and_persists_winner(self, tmp_path):
        db = TuningDB(tmp_path / "db.json")
        res = tune(db, twojmax=4, natoms=32, neighbors=10.0,
                   chunks=(1024,), repeats=1)
        assert not res.cached
        assert len(res.measurements) == 4  # 1 chunk x 2 store_u x 2 y_mode
        assert res.entry["chunk"] == 1024
        assert res.entry["seconds"] == min(res.measurements.values())
        assert TuningDB(tmp_path / "db.json").lookup(res.key) is not None

    def test_cache_hit_skips_measurement(self, tmp_path):
        db = TuningDB(tmp_path / "db.json")
        first = tune(db, twojmax=4, natoms=32, neighbors=10.0,
                     chunks=(1024,), repeats=1)
        again = tune(db, twojmax=4, natoms=32, neighbors=10.0,
                     chunks=(1024,), repeats=1)
        assert again.cached and again.measurements == {}
        assert again.entry == first.entry
        forced = tune(db, twojmax=4, natoms=32, neighbors=10.0,
                      chunks=(1024,), repeats=1, force=True)
        assert not forced.cached and forced.measurements

    def test_empty_grid_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="candidate grid"):
            tune(TuningDB(tmp_path / "db.json"), twojmax=4, natoms=16,
                 neighbors=8.0, chunks=())


class TestEngineBinding:
    def _auto_snap(self, rng, twojmax=4):
        params = SNAPParams(twojmax=twojmax, rcut=3.0, chunk="auto",
                            y_mode="auto")
        return SNAP(params, beta=rng.normal(size=SNAPIndex(twojmax).ncoeff))

    def test_sticky_one_shot_resolution(self, rng, tmp_path, monkeypatch):
        from conftest import free_cluster_pairs, random_cluster

        # isolate lazy (db=None) resolution from any real user-level DB
        monkeypatch.setenv("REPRO_TUNING_DB", str(tmp_path / "iso.json"))
        db = TuningDB(tmp_path / "db.json")
        pos = random_cluster(rng, natoms=5, span=4.0)
        nbr = free_cluster_pairs(pos, 3.0)
        snap = self._auto_snap(rng)
        assert snap.params.has_auto and snap.tuning_decision is None
        snap.compute(pos.shape[0], nbr)
        dec = snap.tuning_decision
        assert dec is not None and not snap.params.has_auto
        # second resolution attempt is a no-op (first caller won)
        assert snap.resolve_tuning(natoms=99, npairs=99, db=db) is dec

    def test_sharded_binds_before_shard_bounds(self, rng, tmp_path,
                                               monkeypatch):
        from conftest import free_cluster_pairs, random_cluster
        from repro.parallel.shards import ShardedSNAP

        monkeypatch.setenv("REPRO_TUNING_DB", str(tmp_path / "iso.json"))
        pos = random_cluster(rng, natoms=5, span=4.0)
        nbr = free_cluster_pairs(pos, 3.0)
        snap = self._auto_snap(rng)
        ref = SNAP(SNAPParams(twojmax=4, rcut=3.0, chunk=4096),
                   beta=snap.beta).compute(pos.shape[0], nbr)
        with ShardedSNAP(snap, nworkers=2) as ev:
            out = ev.compute(pos.shape[0], nbr)
        assert isinstance(snap.params.chunk, int)
        assert snap.tuning_decision is not None
        assert np.array_equal(out.forces, ref.forces)

    def test_build_engine_eager_binding(self, rng, tmp_path):
        from repro.md import build_engine
        from repro.potentials import SNAPPotential
        from repro.structures import random_packed

        db = TuningDB(tmp_path / "db.json")
        db.record(shape_key(4, 64, 64 * 26, 1), GOOD_ENTRY)
        s = random_packed(64, density=0.1, seed=3)
        params = SNAPParams(
            twojmax=4, rcut=(26 / (4 / 3 * np.pi * 0.1)) ** (1 / 3),
            chunk="auto", y_mode="auto", store_u="auto")
        pot = SNAPPotential(params, beta=rng.normal(
            size=SNAPIndex(4).ncoeff))
        with build_engine(s, pot, tuning_db=db.path):
            pass  # bound at construction, before any evaluation
        dec = pot.tuning_decision
        assert dec is not None and dec.source == "db"
        assert pot.params.chunk == GOOD_ENTRY["chunk"]
        assert pot.params.y_mode == GOOD_ENTRY["y_mode"]


class TestCLI:
    def _tune_args(self, db_path):
        return ["tune", "--twojmax", "4", "--natoms", "64",
                "--repeats", "1", "--db", str(db_path)]

    def test_tune_then_run_md_reads_db(self, tmp_path, capsys):
        from repro.cli import main

        db_path = tmp_path / "db.json"
        assert main(self._tune_args(db_path)) == 0
        out = capsys.readouterr().out
        assert "measured winner" in out and str(db_path) in out
        assert db_path.exists()

        assert main(["run-md", "--potential", "snap", "--twojmax", "4",
                     "--natoms", "64", "--steps", "1",
                     "--tuning-db", str(db_path)]) == 0
        out = capsys.readouterr().out
        # the summary provably names the tuned config read from the DB
        assert "tuned:" in out and "[db:v1:2j4:" in out

        # a second tune is a cache hit
        assert main(self._tune_args(db_path)) == 0
        assert "cached winner" in capsys.readouterr().out

    def test_run_md_corrupt_db_degrades(self, tmp_path, capsys):
        from repro.cli import main

        db_path = tmp_path / "db.json"
        db_path.write_text("{torn mid-write")
        with pytest.warns(RuntimeWarning):
            rc = main(["run-md", "--potential", "snap", "--twojmax", "4",
                       "--natoms", "64", "--steps", "1",
                       "--tuning-db", str(db_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tuned:" in out and "[default:" in out

    def test_tune_flags_require_snap(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["run-md", "--potential", "lj", "--steps", "1",
                   "--tuning-db", str(tmp_path / "db.json")])
        assert rc == 2
