"""Tests for the TestSNAP optimization-variant ladder."""

import numpy as np
import pytest

from conftest import free_cluster_pairs, random_cluster
from repro.core import SNAP, SNAPParams
from repro.core.variants import VARIANTS, grind_times, run_variant


@pytest.fixture
def problem(rng):
    params = SNAPParams(twojmax=4, rcut=3.0, chunk=32)
    snap = SNAP(params, beta=rng.normal(size=SNAP(params).index.ncoeff))
    pos = random_cluster(rng, natoms=8, span=4.5)
    return snap, pos.shape[0], free_cluster_pairs(pos, 3.0)


class TestVariants:
    def test_ladder_has_baseline_first(self):
        assert next(iter(VARIANTS)) == "listing1_baseline"

    def test_all_variants_agree(self, problem):
        snap, n, nbr = problem
        ref = run_variant("listing1_baseline", snap, n, nbr)
        for name in VARIANTS:
            res = run_variant(name, snap, n, nbr)
            assert res.energy == pytest.approx(ref.energy, abs=1e-9), name
            assert np.allclose(res.forces, ref.forces, atol=1e-9), name
            assert np.allclose(res.virial, ref.virial, atol=1e-9), name

    def test_unknown_variant(self, problem):
        snap, n, nbr = problem
        with pytest.raises(KeyError, match="unknown variant"):
            run_variant("nope", snap, n, nbr)

    def test_grind_times(self, problem):
        snap, n, nbr = problem
        timings = grind_times(snap, n, nbr)
        assert [t.name for t in timings] == list(VARIANTS)
        assert timings[0].speedup_vs_baseline == pytest.approx(1.0)
        for t in timings:
            assert t.seconds > 0
            assert t.grind_time_per_atom == pytest.approx(t.seconds / n)

    def test_vectorized_faster_than_baseline(self, problem):
        snap, n, nbr = problem
        timings = {t.name: t for t in grind_times(snap, n, nbr)}
        assert timings["vectorized"].speedup_vs_baseline > 1.0
