"""Tests for the Wigner U-matrix recursion and its gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wigner import (cayley_klein, compute_du_layers, compute_u_layers,
                               flatten_dlayers, flatten_layers)


def _random_vectors(rng, n=5, rmin=0.4, rmax=2.2):
    v = rng.normal(size=(n, 3))
    v /= np.linalg.norm(v, axis=1)[:, None]
    v *= rng.uniform(rmin, rmax, size=n)[:, None]
    return v


RCUT = 3.0


class TestCayleyKlein:
    def test_unit_norm(self, rng):
        rij = _random_vectors(rng)
        r = np.linalg.norm(rij, axis=1)
        ck = cayley_klein(rij, r, RCUT)
        assert np.allclose(np.abs(ck.a) ** 2 + np.abs(ck.b) ** 2, 1.0)

    def test_gradients_fd(self, rng):
        rij = _random_vectors(rng, n=3)
        h = 1e-7
        ck0 = cayley_klein(rij, np.linalg.norm(rij, axis=1), RCUT)
        for c in range(3):
            p = rij.copy()
            p[:, c] += h
            ckp = cayley_klein(p, np.linalg.norm(p, axis=1), RCUT)
            p[:, c] -= 2 * h
            ckm = cayley_klein(p, np.linalg.norm(p, axis=1), RCUT)
            da_fd = (ckp.a - ckm.a) / (2 * h)
            db_fd = (ckp.b - ckm.b) / (2 * h)
            assert np.allclose(ck0.da[:, c], da_fd, atol=1e-6)
            assert np.allclose(ck0.db[:, c], db_fd, atol=1e-6)


class TestULayers:
    def test_layer_zero_is_one(self, rng):
        rij = _random_vectors(rng)
        ck = cayley_klein(rij, np.linalg.norm(rij, axis=1), RCUT)
        layers = compute_u_layers(ck, 3)
        assert np.allclose(layers[0], 1.0)

    def test_layer_one_is_cayley_klein_matrix(self, rng):
        # U^{1/2} = [[a, b], [-b*, a*]] in the VMK convention
        rij = _random_vectors(rng)
        ck = cayley_klein(rij, np.linalg.norm(rij, axis=1), RCUT)
        u1 = compute_u_layers(ck, 1)[1]
        m = np.abs(u1).reshape(-1, 4)
        expect = np.stack([np.abs(ck.a), np.abs(ck.b),
                           np.abs(ck.b), np.abs(ck.a)], axis=1)
        assert np.allclose(m, expect, atol=1e-12)

    @pytest.mark.parametrize("tj", [1, 2, 4, 6, 8])
    def test_unitarity(self, rng, tj):
        rij = _random_vectors(rng, n=4)
        ck = cayley_klein(rij, np.linalg.norm(rij, axis=1), RCUT)
        for j, u in enumerate(compute_u_layers(ck, tj)):
            g = np.einsum("nab,ncb->nac", u, u.conj())
            assert np.allclose(g, np.eye(j + 1), atol=1e-12), f"layer {j}"

    def test_inversion_symmetry(self, rng):
        # u[j-ma, j-mb] = (-1)^(ma+mb) conj(u[ma, mb])
        rij = _random_vectors(rng, n=3)
        ck = cayley_klein(rij, np.linalg.norm(rij, axis=1), RCUT)
        for j, u in enumerate(compute_u_layers(ck, 5)):
            for ma in range(j + 1):
                for mb in range(j + 1):
                    lhs = u[:, j - ma, j - mb]
                    rhs = (-1.0) ** (ma + mb) * np.conj(u[:, ma, mb])
                    assert np.allclose(lhs, rhs, atol=1e-12)

    def test_flatten_shape(self, rng):
        rij = _random_vectors(rng, n=7)
        ck = cayley_klein(rij, np.linalg.norm(rij, axis=1), RCUT)
        flat = flatten_layers(compute_u_layers(ck, 4))
        assert flat.shape == (7, sum((j + 1) ** 2 for j in range(5)))


class TestDULayers:
    @pytest.mark.parametrize("tj", [2, 4])
    def test_gradients_fd(self, rng, tj):
        rij = _random_vectors(rng, n=3)
        h = 1e-6

        def uflat(p):
            ck = cayley_klein(p, np.linalg.norm(p, axis=1), RCUT)
            return flatten_layers(compute_u_layers(ck, tj))

        ck0 = cayley_klein(rij, np.linalg.norm(rij, axis=1), RCUT)
        _, dl = compute_du_layers(ck0, tj)
        du = flatten_dlayers(dl)
        for c in range(3):
            p = rij.copy()
            p[:, c] += h
            up = uflat(p)
            p[:, c] -= 2 * h
            um = uflat(p)
            fd = (up - um) / (2 * h)
            assert np.allclose(du[:, c, :], fd, atol=1e-5)

    def test_du_layer_zero_vanishes(self, rng):
        rij = _random_vectors(rng)
        ck = cayley_klein(rij, np.linalg.norm(rij, axis=1), RCUT)
        _, dl = compute_du_layers(ck, 2)
        assert np.all(dl[0] == 0.0)

    def test_reuses_precomputed_u(self, rng):
        rij = _random_vectors(rng)
        ck = cayley_klein(rij, np.linalg.norm(rij, axis=1), RCUT)
        ul = compute_u_layers(ck, 3)
        ul2, _ = compute_du_layers(ck, 3, u_layers=ul)
        assert ul2 is ul


@settings(deadline=None, max_examples=20)
@given(x=st.floats(-1.5, 1.5), y=st.floats(-1.5, 1.5), z=st.floats(0.2, 1.5))
def test_unitarity_property(x, y, z):
    rij = np.array([[x, y, z]])
    r = np.linalg.norm(rij, axis=1)
    if r[0] < 0.1 or r[0] > 2.8:
        return
    ck = cayley_klein(rij, r, RCUT)
    for j, u in enumerate(compute_u_layers(ck, 4)):
        g = np.einsum("nab,ncb->nac", u, u.conj())
        assert np.allclose(g, np.eye(j + 1), atol=1e-11)
